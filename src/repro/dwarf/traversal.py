"""Breadth-first DWARF traversal with the paper's visited lookup table.

Section 4 of the paper mandates a breadth-first, top-down traversal that
visits every node and cell exactly once; because the DWARF is a DAG
("multiple inheritance"), a lookup table of already-visited nodes guards
against reprocessing.  The mappers, the statistics module and the storage
transformations all share this traversal.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, NamedTuple, Optional

from repro.dwarf.cell import DwarfCell
from repro.dwarf.node import DwarfNode


class Visit(NamedTuple):
    """One traversal event.

    ``cell`` is ``None`` for node events; for cell events ``node`` is the
    node *containing* the cell (its parent node).
    """

    node: DwarfNode
    cell: Optional[DwarfCell]


def breadth_first(root: DwarfNode) -> Iterator[Visit]:
    """Yield every node and cell of the DWARF exactly once, BFS order.

    For each node a ``Visit(node, None)`` event is emitted first, followed
    by one ``Visit(node, cell)`` event per cell (ordinary cells in key
    order, then the ALL cell).  Shared nodes are emitted only on first
    encounter, mirroring the paper's lookup-table guard.
    """
    visited = {id(root)}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        yield Visit(node, None)
        for cell in node.all_cells():
            yield Visit(node, cell)
            child = cell.node
            if child is not None and id(child) not in visited:
                visited.add(id(child))
                queue.append(child)


def iter_nodes(root: DwarfNode) -> Iterator[DwarfNode]:
    """Yield each distinct node once, in BFS order."""
    for visit in breadth_first(root):
        if visit.cell is None:
            yield visit.node


def iter_cells(root: DwarfNode) -> Iterator[Visit]:
    """Yield each cell once as ``Visit(parent_node, cell)``, in BFS order."""
    for visit in breadth_first(root):
        if visit.cell is not None:
            yield visit
