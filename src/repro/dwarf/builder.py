"""DWARF cube construction.

Implements the construction algorithm of Sismanis et al. ("Dwarf: shrinking
the petacube", SIGMOD 2002) that the EDBT'16 paper builds on:

* the fact tuples are sorted by dimension order;
* a single scan builds the tree top-down, so tuples sharing a dimension
  prefix share a path (**prefix coalescing**);
* whenever a node will receive no further cells it is *closed*: its ALL
  cell is computed by **SuffixCoalesce** — a single-cell node shares its
  only sub-dwarf instead of materialising a copy, and merges of sub-dwarfs
  share every branch that exists in only one input.

The result is a DAG in which a node may have several parent cells, the
"multiple-inheritance" structure the paper's transformation step must guard
against with a lookup table.

``coalesce=False`` disables all pointer sharing (every shared sub-dwarf is
deep-copied), which is the ablation quantifying how much of DWARF's
compression comes from suffix coalescing.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.flags import checks_enabled
from repro.core.errors import SchemaError, TupleShapeError
from repro.core.schema import CubeSchema
from repro.core.tuples import TupleSet, make_member_key_memo, member_sort_key
from repro.dwarf.cell import ALL, DwarfCell
from repro.dwarf.cube import DwarfCube
from repro.dwarf.node import DwarfNode
from repro.telemetry import get_registry, get_tracer, wall_clock

_REGISTRY = get_registry()
_M_BUILDS = _REGISTRY.counter("dwarf_builds_total", "DWARF cubes built", labels=("mode",))
_M_MEMO_HITS = _REGISTRY.counter(
    "dwarf_merge_memo_hits_total", "suffix-coalesce merges served from the memo"
)
_M_MERGES = _REGISTRY.counter("dwarf_merges_total", "sub-dwarf merges performed")
_H_BUILD_SECONDS = _REGISTRY.histogram(
    "dwarf_build_seconds", "wall time of DwarfBuilder.build", labels=("mode",)
)

#: Total order for dimension members of possibly mixed types (canonical
#: definition lives in :mod:`repro.core.tuples`; re-exported here because
#: the mapping layer historically imports it from the builder).
_member_key = member_sort_key


class DwarfBuilder:
    """Builds :class:`~repro.dwarf.cube.DwarfCube` objects from fact tuples.

    Parameters
    ----------
    schema:
        The cube schema; its aggregator defines how measures combine.
    coalesce:
        Enable suffix coalescing (the default, and what the paper
        evaluates).  Disabling it materialises every aggregate view as a
        private copy — exponentially larger, used only for ablations.
    """

    def __init__(self, schema: CubeSchema, coalesce: bool = True) -> None:
        self.schema = schema
        self.coalesce = coalesce
        self._aggregator = schema.aggregator
        # Memo of sub-dwarf merges; keys hold the input nodes themselves so
        # identical merge requests return the shared result (and so node
        # identities can never be recycled underneath the memo).
        self._merge_memo: Dict[Tuple[DwarfNode, ...], DwarfNode] = {}
        # Memoised member sort keys: merge key unions re-rank the same
        # members thousands of times per build, and sharing one key tuple
        # per distinct member keeps the sort on the identity fast path.
        self._member_key_memo = make_member_key_memo()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def build(
        self,
        facts: Union[TupleSet, Iterable[Sequence]],
        close_root: bool = True,
    ) -> DwarfCube:
        """Construct a DWARF cube from fact tuples.

        ``facts`` may be a :class:`TupleSet` or any iterable of flat
        ``(d1, ..., dn, measure)`` rows (the paper's Fig. 1 input format).

        ``close_root=False`` leaves the root node open (no ALL cell): the
        partitioned builder uses it to construct per-partition sub-dwarfs
        whose roots are later stitched under one shared, then-closed root.
        """
        tuple_set = facts if isinstance(facts, TupleSet) else TupleSet(self.schema, facts)
        if tuple_set.schema.n_dimensions != self.schema.n_dimensions:
            raise TupleShapeError(
                f"tuple set has {tuple_set.schema.n_dimensions} dimensions, "
                f"builder schema {self.schema.name!r} has {self.schema.n_dimensions}"
            )
        t0 = wall_clock()
        tracer = get_tracer()
        mode = "serial" if close_root else "open-root"
        with tracer.span("dwarf.build", schema=self.schema.name, tuples=len(tuple_set)):
            with tracer.span("dwarf.sort"):
                ordered = tuple_set if tuple_set.is_sorted() else tuple_set.sorted()
            self._merge_memo.clear()
            self._member_key_memo = make_member_key_memo()

            n_dims = self.schema.n_dimensions
            agg = self._aggregator
            root = DwarfNode(0)
            path: List[Optional[DwarfNode]] = [root] + [None] * (n_dims - 1)
            prev: Optional[Tuple] = None

            with tracer.span("dwarf.scan"):
                for fact in ordered:
                    keys = fact.keys
                    if prev is not None:
                        divergence = self._divergence(prev, keys)
                        if divergence == n_dims:
                            # Identical dimension vector: fold the measure into the
                            # existing leaf cell.
                            leaf = path[n_dims - 1].cell(keys[-1])
                            leaf.value = agg.merge(leaf.value, agg.lift(fact.measure))
                            continue
                        # Nodes strictly below the divergence point will never be
                        # revisited in sorted order: close them (SuffixCoalesce).
                        for level in range(n_dims - 1, divergence, -1):
                            self._close(path[level])
                    else:
                        divergence = 0
                    # Open the new path below the divergence point.
                    for level in range(divergence, n_dims - 1):
                        child = DwarfNode(level + 1)
                        path[level].add_cell(DwarfCell(keys[level], node=child))
                        path[level + 1] = child
                    path[n_dims - 1].add_cell(
                        DwarfCell(keys[-1], value=agg.lift(fact.measure))
                    )
                    prev = keys

                if prev is not None:
                    bottom = -1 if close_root else 0
                    for level in range(n_dims - 1, bottom, -1):
                        self._close(path[level])
            n_merges = len(self._merge_memo)
            if close_root:
                self._merge_memo.clear()
            # else: the partitioned builder harvests the memo so the final
            # root close can reuse intra-partition merges exactly as the
            # serial scan's accumulated memo would.
            cube = DwarfCube(
                self.schema, root, n_source_tuples=len(tuple_set), n_merges=n_merges
            )
        _M_BUILDS.labels(mode).inc()
        _H_BUILD_SECONDS.labels(mode).observe(wall_clock() - t0)
        if close_root and checks_enabled():
            # REPRO_CHECK=1 sanitizer mode: a freshly closed cube must
            # satisfy every structural invariant.  Open-root partition
            # builds are checked by the parallel builder after stitching.
            from repro.analysis.runner import runtime_check

            runtime_check(
                cube,
                label=f"DwarfBuilder.build[{self.schema.name}]",
                coalesce=self.coalesce,
            )
        return cube

    # ------------------------------------------------------------------
    # construction internals
    # ------------------------------------------------------------------
    @staticmethod
    def _divergence(prev: Tuple, keys: Tuple) -> int:
        """Index of the first dimension where two key vectors differ."""
        for index, (a, b) in enumerate(zip(prev, keys)):
            if a != b:
                return index
        return len(keys)

    def _close(self, node: DwarfNode) -> None:
        """Create ``node``'s ALL cell (the SuffixCoalesce step)."""
        if node.is_closed or node.n_cells == 0:
            return
        leaf_level = node.level == self.schema.n_dimensions - 1
        if leaf_level:
            if node.n_cells == 1 and self.coalesce:
                only = next(node.cells())
                node.all_cell = DwarfCell(ALL, value=only.value)
            else:
                agg = self._aggregator
                state = reduce(agg.merge, (c.value for c in node.cells()))
                node.all_cell = DwarfCell(ALL, value=state)
        else:
            children = [c.node for c in node.cells()]
            if node.n_cells == 1:
                target = children[0] if self.coalesce else self._copy(children[0])
                node.all_cell = DwarfCell(ALL, node=target)
            else:
                node.all_cell = DwarfCell(ALL, node=self._merge(tuple(children)))

    def _merge(self, nodes: Tuple[DwarfNode, ...]) -> DwarfNode:
        """Merge sub-dwarfs into the sub-dwarf of an ALL cell.

        Branches present in a single input are shared, not copied; merges
        of identical input sets are memoised so repeated group-by views
        collapse onto one shared sub-dwarf.
        """
        memo_key: Optional[Tuple[DwarfNode, ...]] = None
        if self.coalesce:
            memo_key = tuple(sorted(nodes, key=id))
            cached = self._merge_memo.get(memo_key)
            if cached is not None:
                _M_MEMO_HITS.inc()
                return cached
        _M_MERGES.inc()

        level = nodes[0].level
        merged = DwarfNode(level)
        leaf_level = level == self.schema.n_dimensions - 1
        # One pass over every input node's cells accumulates the per-key
        # union; probing each node per unique key (the textbook form) costs
        # O(keys × nodes) dict lookups and dominated the construction
        # profile.  Input-node order is preserved per key, so aggregation
        # states merge in exactly the order the probing form produced.
        key_of = self._member_key_memo
        if leaf_level:
            agg_merge = self._aggregator.merge
            states: Dict[object, object] = {}
            for node in nodes:
                for key, cell in node._cells.items():
                    if key in states:
                        states[key] = agg_merge(states[key], cell.value)
                    else:
                        states[key] = cell.value
            for key in sorted(states, key=key_of):
                merged.add_cell(DwarfCell(key, value=states[key]))
        else:
            sources_by_key: Dict[object, List[DwarfNode]] = {}
            for node in nodes:
                for key, cell in node._cells.items():
                    sources = sources_by_key.get(key)
                    if sources is None:
                        sources_by_key[key] = [cell.node]
                    else:
                        sources.append(cell.node)
            for key in sorted(sources_by_key, key=key_of):
                sources = sources_by_key[key]
                if len(sources) == 1:
                    child = sources[0] if self.coalesce else self._copy(sources[0])
                else:
                    child = self._merge(tuple(sources))
                merged.add_cell(DwarfCell(key, node=child))
        self._close(merged)
        if memo_key is not None:
            self._merge_memo[memo_key] = merged
        return merged

    def _copy(self, node: DwarfNode) -> DwarfNode:
        """Deep copy of a sub-dwarf; only used when coalescing is disabled."""
        clone = DwarfNode(node.level)
        for cell in node.cells():
            if cell.is_leaf:
                clone.add_cell(DwarfCell(cell.key, value=cell.value))
            else:
                clone.add_cell(DwarfCell(cell.key, node=self._copy(cell.node)))
        source_all = node.all_cell
        if source_all is not None:
            if source_all.is_leaf:
                clone.all_cell = DwarfCell(ALL, value=source_all.value)
            else:
                clone.all_cell = DwarfCell(ALL, node=self._copy(source_all.node))
        return clone


def build_cube(
    facts: Union[TupleSet, Iterable[Sequence]],
    schema: Optional[CubeSchema] = None,
    coalesce: bool = True,
) -> DwarfCube:
    """One-call convenience: build a DWARF cube from fact tuples."""
    if schema is None:
        if isinstance(facts, TupleSet):
            schema = facts.schema
        else:
            raise SchemaError("build_cube needs a schema when facts is a plain iterable")
    return DwarfBuilder(schema, coalesce=coalesce).build(facts)


def merge_cubes(left: DwarfCube, right: DwarfCube) -> DwarfCube:
    """Merge two cubes sharing a schema into a new cube.

    This is the incremental-maintenance primitive the paper's conclusion
    points at: build a small delta cube from the latest stream window and
    merge it into the standing cube, instead of rebuilding from scratch.
    """
    if left.schema != right.schema:
        raise SchemaError(
            f"cannot merge cubes with different schemas: "
            f"{left.schema.name!r} vs {right.schema.name!r}"
        )
    builder = DwarfBuilder(left.schema, coalesce=True)
    root = builder._merge((left.root, right.root))
    return DwarfCube(
        left.schema,
        root,
        n_source_tuples=left.n_source_tuples + right.n_source_tuples,
        n_merges=len(builder._merge_memo),
    )
