"""DWARF nodes.

A DWARF node is a container for the cells that share the same parent
(paper §2).  Cells are kept in a dict ordered by insertion; because DWARF
construction consumes tuples in sorted order, and the merge step inserts
keys in sorted order, iteration over :meth:`DwarfNode.cells` always yields
keys in ascending order — range queries rely on this.

Nodes form a DAG, not a tree: suffix coalescing makes several parent cells
point at one shared node ("multiple inheritance" in the paper's wording),
which is why traversal and mapping code always deduplicates by node
identity.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.dwarf.cell import ALL, DwarfCell


class DwarfNode:
    """A container of sibling :class:`DwarfCell` objects at one level.

    Attributes
    ----------
    level:
        0-based dimension index; the root node is level 0 and leaf nodes
        sit at ``n_dimensions - 1``.
    all_cell:
        The node's ALL cell, created when the node is *closed* during
        construction (SuffixCoalesce).  ``None`` while the node is still
        open.
    """

    __slots__ = ("level", "_cells", "all_cell")

    def __init__(self, level: int) -> None:
        self.level = level
        self._cells: Dict[object, DwarfCell] = {}
        self.all_cell: Optional[DwarfCell] = None

    # -- cell access --------------------------------------------------------
    def cell(self, key) -> Optional[DwarfCell]:
        """The cell for ``key`` (the ALL sentinel selects the ALL cell)."""
        if key is ALL:
            return self.all_cell
        return self._cells.get(key)

    def add_cell(self, cell: DwarfCell) -> None:
        self._cells[cell.key] = cell

    def cells(self) -> Iterator[DwarfCell]:
        """Iterate the ordinary (non-ALL) cells in ascending key order."""
        return iter(self._cells.values())

    def all_cells(self) -> Iterator[DwarfCell]:
        """Iterate ordinary cells then the ALL cell (when present)."""
        yield from self._cells.values()
        if self.all_cell is not None:
            yield self.all_cell

    def keys(self):
        return self._cells.keys()

    @property
    def n_cells(self) -> int:
        """Number of ordinary cells (the ALL cell is counted separately)."""
        return len(self._cells)

    @property
    def is_closed(self) -> bool:
        return self.all_cell is not None

    def __contains__(self, key) -> bool:
        return key in self._cells

    def __repr__(self) -> str:
        keys = list(self._cells)
        shown = keys if len(keys) <= 4 else keys[:4] + ["..."]
        closed = "closed" if self.is_closed else "open"
        return f"DwarfNode(L{self.level}, {closed}, keys={shown})"
