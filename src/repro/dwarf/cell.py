"""DWARF cells.

A DWARF cell is the smallest structure in a DWARF cube (paper §2): it has a
*key* (one dimension member, e.g. ``"Fenian St"``), lives inside a DWARF
node, and either

* points to a DWARF node one level down (*non-leaf cell*), or
* carries an aggregation state derived from the fact measures (*leaf cell*).

Every node additionally owns one special *ALL cell* whose key is the
:data:`ALL` sentinel; it represents the aggregate over the node's dimension
and is what prefix/suffix coalescing shares between parents.
"""

from __future__ import annotations

from typing import Optional


class _AllKey:
    """Singleton sentinel used as the key of ALL cells.

    A dedicated object (rather than ``"*"``) cannot collide with dimension
    members arriving from arbitrary smart-city feeds.
    """

    _instance: Optional["_AllKey"] = None

    def __new__(cls) -> "_AllKey":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ALL"

    def __reduce__(self):
        return (_AllKey, ())


#: The sentinel key for ALL cells ("aggregate over this dimension").
ALL = _AllKey()


class DwarfCell:
    """One cell of a DWARF cube.

    Attributes
    ----------
    key:
        The dimension member this cell represents, or :data:`ALL`.
    node:
        The child :class:`~repro.dwarf.node.DwarfNode` this cell points to;
        ``None`` for leaf cells.
    value:
        The aggregation *state* held by a leaf cell (``None`` for non-leaf
        cells).  States are finalized by the cube's aggregator at query
        time, so AVG cubes can keep ``(total, count)`` pairs here.
    """

    __slots__ = ("key", "node", "value")

    def __init__(self, key, node=None, value=None) -> None:
        self.key = key
        self.node = node
        self.value = value

    @property
    def is_leaf(self) -> bool:
        """True when the cell terminates the tree (paper: *leaf cell*)."""
        return self.node is None

    @property
    def is_all(self) -> bool:
        return self.key is ALL

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"DwarfCell({self.key!r}, value={self.value!r})"
        return f"DwarfCell({self.key!r} -> node@L{self.node.level})"
