"""Parallel partitioned DWARF construction.

The sorted-scan construction of :class:`~repro.dwarf.builder.DwarfBuilder`
is partition-sequential: tuples sharing a first-dimension member form a
contiguous run of the sorted input, and the sub-dwarf under that member is
finished (closed) before the scan ever touches the next member.  The only
cross-run work is the final root close, which merges every first-dimension
sub-dwarf into the root's ALL cell — consulting the merge memo accumulated
over all the runs, so it can reuse intra-run merges wholesale.

That makes first-dimension prefixes a clean parallel partitioning, the
strategy of "Scalable Data Cube Analysis over Big Data": split the sorted
tuple set into contiguous chunks on first-dimension boundaries, build each
chunk's sub-dwarf in a worker (``close_root=False`` so the partition root
stays open), concatenate the partition roots' cells under one shared root
— still in ascending key order — and close that root with the ordinary
SuffixCoalesce machinery, seeded with the union of the workers' merge
memos.  The result is *structurally identical* to the serial build: same
DAG topology, same node/cell counts, same merge count, and therefore
byte-identical once transformed for storage.

Workers default to ``os.cpu_count()``, overridable with the
``REPRO_WORKERS`` environment variable (``REPRO_WORKERS=1`` forces the
serial path, mirroring how ``REPRO_SCALE`` controls dataset size).  Small
inputs fall back to threads (no pickling) or plain serial construction,
because process start-up plus graph pickling costs more than it saves
below a few thousand tuples.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.flags import checks_enabled
from repro.core.errors import TupleShapeError
from repro.core.schema import CubeSchema
from repro.core.tuples import FactTuple, TupleSet
from repro.core.workers import resolve_workers
from repro.dwarf.builder import DwarfBuilder
from repro.dwarf.cube import DwarfCube
from repro.dwarf.node import DwarfNode
from repro.telemetry import get_registry, get_tracer

_M_PARALLEL_BUILDS = get_registry().counter(
    "dwarf_parallel_builds_total",
    "ParallelDwarfBuilder builds by effective mode",
    labels=("mode",),
)

#: Below this many tuples the serial builder wins outright.
MIN_PARALLEL_TUPLES = 2048
#: Below this many tuples per build, process start-up + pickling the
#: sub-dwarf graphs back costs more than true parallelism recovers, so
#: the thread pool (shared address space, no pickling) is used instead.
MIN_PROCESS_TUPLES = 65536


def _build_partition(schema: CubeSchema, facts: List[FactTuple], coalesce: bool):
    """Worker: build one partition's sub-dwarf, leaving its root open.

    Module-level so it pickles for ``ProcessPoolExecutor``; the facts are
    a contiguous, already-sorted slice so the worker skips re-validation.
    Returns the open root together with the builder's merge memo: the
    final root close re-merges single-source shares from one partition
    and must hit that partition's memo exactly as the serial scan's
    accumulated memo would, or the stitched DAG shares less than the
    serial one.  (Root and memo travel in one payload so pickling keeps
    their node identities consistent.)
    """
    tuple_set = TupleSet._from_sorted_facts(schema, facts)
    builder = DwarfBuilder(schema, coalesce=coalesce)
    cube = builder.build(tuple_set, close_root=False)
    return cube.root, builder._merge_memo


class ParallelDwarfBuilder:
    """Drop-in parallel replacement for :class:`DwarfBuilder`.

    Parameters
    ----------
    schema:
        The cube schema, as for the serial builder.
    coalesce:
        Suffix coalescing toggle.  ``False`` (the ablation that deep-copies
        every shared branch) routes to the serial builder: without sharing
        there is no merge memo to reason about and the copies blow memory
        up faster than parallelism pays off.
    workers:
        Worker count; ``None`` resolves via :func:`resolve_workers`.
        ``1`` forces the serial path.
    mode:
        ``"auto"`` picks processes for large inputs and threads otherwise;
        ``"process"``, ``"thread"`` and ``"serial"`` force a path (tests
        and benchmarks pin modes explicitly).
    min_parallel_tuples:
        Inputs smaller than this always build serially.
    """

    def __init__(
        self,
        schema: CubeSchema,
        coalesce: bool = True,
        workers: Optional[int] = None,
        mode: str = "auto",
        min_parallel_tuples: int = MIN_PARALLEL_TUPLES,
    ) -> None:
        if mode not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown parallel build mode: {mode!r}")
        self.schema = schema
        self.coalesce = coalesce
        self.workers = resolve_workers(workers)
        self.mode = mode
        self.min_parallel_tuples = min_parallel_tuples

    # ------------------------------------------------------------------
    def build(self, facts: Union[TupleSet, Iterable[Sequence]]) -> DwarfCube:
        """Construct a DWARF cube, partitioning across workers when it pays."""
        tuple_set = facts if isinstance(facts, TupleSet) else TupleSet(self.schema, facts)
        if tuple_set.schema.n_dimensions != self.schema.n_dimensions:
            raise TupleShapeError(
                f"tuple set has {tuple_set.schema.n_dimensions} dimensions, "
                f"builder schema {self.schema.name!r} has {self.schema.n_dimensions}"
            )
        tracer = get_tracer()
        with tracer.span("dwarf.parallel.sort"):
            ordered = tuple_set if tuple_set.is_sorted() else tuple_set.sorted()
        mode = self._effective_mode(len(ordered))
        _M_PARALLEL_BUILDS.labels(mode).inc()
        if mode == "serial":
            return DwarfBuilder(self.schema, coalesce=self.coalesce).build(ordered)

        with tracer.span("dwarf.parallel.partition") as span:
            partitions = self._partition(ordered)
            span.set("partitions", len(partitions))
        if len(partitions) <= 1:
            return DwarfBuilder(self.schema, coalesce=self.coalesce).build(ordered)
        with tracer.span(
            "dwarf.parallel.build_partitions", mode=mode, partitions=len(partitions)
        ):
            parts, pickled = self._build_partitions(partitions, mode)
        with tracer.span("dwarf.parallel.stitch"):
            return self._stitch(parts, n_source_tuples=len(ordered), pickled=pickled)

    # ------------------------------------------------------------------
    def _effective_mode(self, n_tuples: int) -> str:
        if (
            self.mode == "serial"
            or not self.coalesce
            or self.workers <= 1
            or n_tuples == 0
        ):
            return "serial"
        if self.mode != "auto":
            return self.mode
        if n_tuples < self.min_parallel_tuples:
            return "serial"
        return "process" if n_tuples >= MIN_PROCESS_TUPLES else "thread"

    def _partition(self, ordered: TupleSet) -> List[List[FactTuple]]:
        """Split sorted facts into contiguous chunks on dim-0 boundaries.

        Duplicate dimension vectors share a first-dimension member, so they
        can never straddle a chunk boundary.  Chunks are balanced greedily
        toward ``2 × workers`` pieces so one giant first-dimension group
        doesn't serialise the whole build behind a single worker.
        """
        facts = ordered._tuples
        groups: List[List[FactTuple]] = []
        for fact in facts:
            # Adjacent equality mirrors the serial builder's divergence test
            # (`!=` between consecutive key vectors), so whatever the serial
            # scan treats as one first-dimension run stays one atomic group.
            if groups and fact.keys[0] == groups[-1][-1].keys[0]:
                groups[-1].append(fact)
            else:
                groups.append([fact])

        target = max(1, len(facts) // (self.workers * 2))
        chunks: List[List[FactTuple]] = []
        for group in groups:
            if chunks and len(chunks[-1]) < target:
                chunks[-1].extend(group)
            else:
                chunks.append(list(group))
        return chunks

    def _build_partitions(
        self, partitions: List[List[FactTuple]], mode: str
    ) -> Tuple[List[Tuple[DwarfNode, int]], bool]:
        """Build every partition; returns ``(parts, pickled)``.

        ``pickled`` tells :meth:`_stitch` whether the sub-dwarfs crossed a
        process boundary, which invalidates the id-ordering of memo keys.
        """
        max_workers = min(self.workers, len(partitions))
        pool_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
        try:
            with pool_cls(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(_build_partition, self.schema, chunk, self.coalesce)
                    for chunk in partitions
                ]
                return [future.result() for future in futures], mode == "process"
        except (OSError, PermissionError):
            # Sandboxes without fork/spawn support: same math, one process.
            return [
                _build_partition(self.schema, chunk, self.coalesce)
                for chunk in partitions
            ], False

    def _stitch(self, parts, n_source_tuples: int, pickled: bool = True) -> DwarfCube:
        """Concatenate open partition roots under one root, then close it.

        Partition roots arrive in first-dimension order with their cells
        already ascending, so simple concatenation preserves the global
        key order every query primitive relies on.  The finisher is seeded
        with every partition's merge memo before closing the root: the
        root close's recursion can re-request an intra-partition merge
        (closing a merged node whose cells are all single-source shares
        from one partition), and the serial scan's accumulated memo would
        have answered it with the shared node.  Memo keys are node tuples
        sorted by ``id``; ids change across a pickle round-trip, so keys
        are re-canonicalised when the parts came from worker processes —
        thread-built parts kept their ids and seed with a plain update.
        """
        root = DwarfNode(0)
        finisher = DwarfBuilder(self.schema, coalesce=self.coalesce)
        memo = finisher._merge_memo
        for part_root, part_memo in parts:
            if pickled:
                for key, merged in part_memo.items():
                    memo[tuple(sorted(key, key=id))] = merged
            else:
                memo.update(part_memo)
            for cell in part_root.cells():
                root.add_cell(cell)
        finisher._close(root)
        cube = DwarfCube(
            self.schema,
            root,
            n_source_tuples=n_source_tuples,
            n_merges=len(memo),
        )
        if checks_enabled():
            # REPRO_CHECK=1 sanitizer mode: the stitched DAG must satisfy
            # the same structural invariants as a serially built cube.
            from repro.analysis.runner import runtime_check

            runtime_check(
                cube, label=f"ParallelDwarfBuilder.build[{self.schema.name}]"
            )
        return cube

    def __repr__(self) -> str:
        return (
            f"ParallelDwarfBuilder(schema={self.schema.name!r}, "
            f"workers={self.workers}, mode={self.mode!r})"
        )


def build_cube_parallel(
    facts: Union[TupleSet, Iterable[Sequence]],
    schema: Optional[CubeSchema] = None,
    coalesce: bool = True,
    workers: Optional[int] = None,
    mode: str = "auto",
) -> DwarfCube:
    """One-call convenience mirroring :func:`repro.dwarf.builder.build_cube`."""
    if schema is None:
        if isinstance(facts, TupleSet):
            schema = facts.schema
        else:
            raise TupleShapeError(
                "build_cube_parallel needs a schema when facts is a plain iterable"
            )
    return ParallelDwarfBuilder(
        schema, coalesce=coalesce, workers=workers, mode=mode
    ).build(facts)
