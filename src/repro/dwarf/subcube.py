"""Sub-cube extraction.

The ``DWARF_Schema`` column family carries an ``is_cube`` flag marking
records that are "a DWARF cube constructed from querying a DWARF schema"
(paper §3).  :func:`extract_subcube` is that query: it filters the base
facts of a cube by per-dimension constraints and builds a new, smaller
DWARF over the surviving facts, which a mapper can then store with
``is_cube=True``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.tuples import TupleSet
from repro.dwarf.cube import DwarfCube
from repro.dwarf.query import Constraint, Each, select


def extract_subcube(
    cube: DwarfCube,
    constraints: Optional[Mapping[str, Constraint]] = None,
    name: Optional[str] = None,
    **by_name: Constraint,
) -> DwarfCube:
    """Build a new DWARF containing only the facts matching ``constraints``.

    Constraints use the vocabulary of :mod:`repro.dwarf.query`
    (``Member``/``In``/``Range``); dimensions not mentioned are kept whole.
    The result is a complete DWARF (with its own ALL cells), suitable for
    storage as an ``is_cube`` record.

    Note: with a non-SUM aggregator the extracted cube aggregates the
    *finalized* leaf values of the source cube, which is exact for
    SUM/COUNT/MIN/MAX; for AVG the sub-cube's upper aggregates become an
    average of averages.
    """
    from repro.core.schema import CubeSchema
    from repro.dwarf.builder import DwarfBuilder

    spec: Dict[str, Constraint] = dict(constraints or {})
    spec.update(by_name)
    # Every dimension must contribute a coordinate so the matching base
    # facts can be re-assembled into rows.
    for dim_name in cube.schema.dimension_names:
        constraint = spec.get(dim_name)
        if constraint is None or not constraint.grouped:
            spec[dim_name] = Each()

    schema = cube.schema
    if name and name != schema.name:
        schema = CubeSchema(
            name,
            schema.dimensions,
            measure=schema.measure,
            aggregator=schema.aggregator,
        )

    facts = TupleSet(schema)
    for coords, value in select(cube, spec):
        facts.append(coords + (value,))
    return DwarfBuilder(schema).build(facts)
