"""Hierarchical DWARF extension: ROLLUP and DRILL DOWN.

Classic DWARF has no dimensional hierarchies; the paper's related work
(§6, ref [11] "Hierarchical dwarfs for the rollup cube") sketches the
extension and notes that the ``DWARF_Node`` schema of Table 1-B could
accommodate it.  This module implements the extension in two pieces:

* :class:`DimensionHierarchy` — a member → parent mapping per level pair
  (e.g. station → district → city), validated to be a proper function;
* :func:`rollup` / :func:`drilldown` — OLAP operators over a cube:
  ``rollup`` regroups a dimension's members by their ancestors at a
  coarser level and re-aggregates; ``drilldown`` is its inverse,
  expanding one coarse group back into fine members.

Rather than mutating the DWARF structure, rollup builds a derived cube
whose dimension holds the coarse members — the "partial DWARF" of [11] —
so all the ordinary query primitives keep working on the result.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import QueryError, SchemaError
from repro.core.schema import CubeSchema, Dimension
from repro.core.tuples import TupleSet
from repro.dwarf.cube import DwarfCube
from repro.dwarf.query import Each, In, select


class DimensionHierarchy:
    """A multi-level hierarchy over one dimension.

    ``levels`` are named coarsest-last in the mapping chain: construction
    takes the *fine* level name plus a list of ``(coarse_level_name,
    child_to_parent_mapping)`` pairs, finest-to-coarsest.

    >>> h = DimensionHierarchy(
    ...     "station",
    ...     [("district", {"Fenian St": "D2"}), ("city", {"D2": "Dublin"})],
    ... )
    >>> h.ancestor("Fenian St", "city")
    'Dublin'
    """

    def __init__(
        self,
        base_level: str,
        parents: Iterable[Tuple[str, Mapping[object, object]]],
    ) -> None:
        self.base_level = base_level
        self._levels: List[str] = [base_level]
        self._maps: Dict[str, Dict[object, object]] = {}
        for level_name, mapping in parents:
            if level_name in self._levels:
                raise SchemaError(f"duplicate hierarchy level {level_name!r}")
            self._maps[level_name] = dict(mapping)
            self._levels.append(level_name)
        if len(self._levels) < 2:
            raise SchemaError("a hierarchy needs at least one parent level")

    @property
    def levels(self) -> Tuple[str, ...]:
        """Level names, finest first."""
        return tuple(self._levels)

    def parent_level(self, level: str) -> Optional[str]:
        index = self._levels.index(level)
        return self._levels[index + 1] if index + 1 < len(self._levels) else None

    def ancestor(self, member, level: str):
        """Ancestor of a base-level ``member`` at ``level``."""
        if level == self.base_level:
            return member
        if level not in self._maps:
            raise QueryError(
                f"unknown hierarchy level {level!r}; levels are {self.levels}"
            )
        current = member
        for name in self._levels[1:]:
            mapping = self._maps[name]
            if current not in mapping:
                raise QueryError(f"member {current!r} has no parent at level {name!r}")
            current = mapping[current]
            if name == level:
                return current
        raise QueryError(f"unreachable level {level!r}")  # pragma: no cover

    def children(self, group, level: str) -> Tuple:
        """Base-level members whose ancestor at ``level`` equals ``group``."""
        if level not in self._maps:
            raise QueryError(
                f"unknown hierarchy level {level!r}; levels are {self.levels}"
            )
        members = set()
        for member in self._base_members():
            try:
                if self.ancestor(member, level) == group:
                    members.add(member)
            except QueryError:
                continue
        return tuple(sorted(members, key=repr))

    def _base_members(self) -> Tuple:
        first_parent = self._levels[1]
        return tuple(self._maps[first_parent].keys())


def rollup(
    cube: DwarfCube,
    dimension: str,
    hierarchy: DimensionHierarchy,
    level: str,
) -> DwarfCube:
    """ROLLUP: coarsen ``dimension`` to ``level`` of ``hierarchy``.

    Returns a new DWARF whose ``dimension`` members are the coarse groups;
    all other dimensions are untouched.  Exact for distributive
    aggregators (SUM/COUNT/MIN/MAX).
    """
    if hierarchy.base_level != dimension and dimension not in hierarchy.levels:
        raise QueryError(
            f"hierarchy (base {hierarchy.base_level!r}) does not cover "
            f"dimension {dimension!r}"
        )
    schema = cube.schema
    dim_index = schema.dimension_index(dimension)
    spec = {name: Each() for name in schema.dimension_names}
    rolled = TupleSet(_renamed_schema(schema, dim_index, level))
    for coords, value in select(cube, spec):
        coarse = hierarchy.ancestor(coords[dim_index], level)
        row = coords[:dim_index] + (coarse,) + coords[dim_index + 1:] + (value,)
        rolled.append(row)

    from repro.dwarf.builder import DwarfBuilder

    return DwarfBuilder(rolled.schema).build(rolled)


def drilldown(
    cube: DwarfCube,
    dimension: str,
    hierarchy: DimensionHierarchy,
    level: str,
    group,
) -> DwarfCube:
    """DRILL DOWN: expand one coarse ``group`` back to base members.

    ``cube`` must be the *base* cube (fine-grained); the result contains
    only facts whose ``dimension`` member rolls up into ``group`` at
    ``level``.
    """
    members = hierarchy.children(group, level)
    if not members:
        raise QueryError(f"group {group!r} has no members at level {level!r}")

    from repro.dwarf.subcube import extract_subcube

    present = set(cube.members(dimension))
    keep = [m for m in members if m in present]
    if not keep:
        raise QueryError(f"group {group!r} has no members present in the cube")
    return extract_subcube(cube, {dimension: In(keep)})


def _renamed_schema(schema: CubeSchema, dim_index: int, new_name: str) -> CubeSchema:
    dims = list(schema.dimensions)
    old = dims[dim_index]
    taken = {d.name for i, d in enumerate(dims) if i != dim_index}
    if new_name in taken:
        # e.g. rolling "station" up to "district" when the cube already has
        # a district dimension: qualify the rolled-up name.
        new_name = f"{old.name}_{new_name}"
    dims[dim_index] = Dimension(new_name, dimension_table=old.dimension_table)
    return CubeSchema(
        f"{schema.name}@{new_name}",
        dims,
        measure=schema.measure,
        aggregator=schema.aggregator,
    )
