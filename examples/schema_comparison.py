"""Compare the paper's four storage schemas on one cube.

A miniature of the paper's evaluation (§5): build one bike cube, store
it under MySQL-DWARF, MySQL-Min, NoSQL-DWARF and NoSQL-Min, and print
insert time and size side by side — then prove bi-directionality by
reloading from every schema and cross-checking a query.

Run:  python examples/schema_comparison.py            (quick)
      REPRO_SCALE=0.25 python examples/schema_comparison.py  (bigger)
"""

import time

from repro.bench import current_scale, load_dataset
from repro.mapping import all_mappers


def main() -> None:
    dataset = "Week"
    bundle = load_dataset(dataset)
    cube = bundle.cube
    stats = cube.stats
    print(f"dataset {dataset} @ scale {current_scale():g}: "
          f"{bundle.n_tuples} tuples -> DWARF with "
          f"{stats.node_count} nodes / {stats.cell_count} cells "
          f"({stats.shared_node_count} shared by suffix coalescing)\n")

    print(f"{'schema':14s} {'insert ms':>10s} {'size MB':>9s} {'reload ms':>10s}")
    reference = None
    for mapper in all_mappers():
        started = time.perf_counter()
        schema_id = mapper.store(cube, probe_size=False)
        insert_ms = (time.perf_counter() - started) * 1000

        size_mb = mapper.size_bytes() / 1048576

        started = time.perf_counter()
        rebuilt = mapper.load(schema_id)
        reload_ms = (time.perf_counter() - started) * 1000

        probe = rebuilt.value(daypart="morning-peak")
        if reference is None:
            reference = probe
        assert probe == reference, "schemas disagree!"
        print(f"{mapper.name:14s} {insert_ms:10.0f} {size_mb:9.2f} {reload_ms:10.0f}")

    print("\nall four schemas reload to identical cubes "
          f"(morning-peak probe = {reference})")


if __name__ == "__main__":
    main()
