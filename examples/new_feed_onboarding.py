"""Onboarding an unknown feed: inference, dimension tables, stored queries.

A city adds a new service (here: the auctions JSON feed, pretending we
have never seen its schema). The canonical workflow:

1. harvest a sample and *infer* a cube definition from the raw records;
2. build and store the cube;
3. store a dimension table with member attributes next to it;
4. answer point queries directly against storage (no full reload).

Run:  python examples/new_feed_onboarding.py
"""

from repro.dwarf import ALL, build_cube
from repro.etl import infer_mapping, parse_json_records
from repro.mapping import NoSQLDwarfMapper, stored_point_query
from repro.mapping.dimension_tables import DimensionTableStore
from repro.smartcity import AuctionFeedGenerator


def main() -> None:
    # 1. harvest + infer ------------------------------------------------
    documents = AuctionFeedGenerator().generate_documents(days=5, lots_per_day=80)
    records = [
        record
        for document in documents
        for record in parse_json_records(document, "lots")
    ]
    # lot ids and bid counts are numeric too — cap dimension cardinality
    # so ids don't become dimensions, and let inference pick the measure.
    mapping = infer_mapping(
        records, name="auctions", measure="final_price", max_dimension_cardinality=60
    )
    print("inferred cube definition:")
    print(f"  dimensions (by cardinality): {list(mapping.schema.dimension_names)}")
    print(f"  measure:                     {mapping.schema.measure}")

    # 2. build + store ---------------------------------------------------
    facts = mapping.extract(records)
    cube = build_cube(facts)
    mapper = NoSQLDwarfMapper()
    mapper.install()
    schema_id = mapper.store(cube)
    print(f"\nstored {len(facts)} facts as schema_id={schema_id} "
          f"({cube.stats.node_count} nodes / {cube.stats.cell_count} cells)")

    # 3. dimension table --------------------------------------------------
    categories = sorted({str(r["category"]) for r in records})
    store = DimensionTableStore(mapper)
    store.store(
        "Category",
        {c: {"commission_pct": 8 if c in ("vehicles", "electronics") else 12}
         for c in categories},
    )
    print(f"dimension table 'Category' stored with {len(categories)} members")

    # 4. stored-cube queries ------------------------------------------------
    dims = cube.schema.dimension_names
    category_index = dims.index("category")
    print("\nturnover by category (queried against storage):")
    for category in categories:
        coordinates = [ALL] * len(dims)
        coordinates[category_index] = category
        turnover = stored_point_query(mapper, schema_id, coordinates)
        commission = store.attributes("Category", category)["commission_pct"]
        fees = (turnover or 0) * commission // 100
        print(f"  {category:13s} EUR {turnover or 0:7d}  "
              f"(commission {commission:2d}% -> EUR {fees})")

    grand = stored_point_query(mapper, schema_id, [ALL] * len(dims))
    assert grand == cube.total()
    print(f"\ngrand total EUR {grand} — matches the in-memory cube")


if __name__ == "__main__":
    main()
