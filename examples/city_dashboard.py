"""Smart-city dashboard: fuse cubes from several services in one store.

The paper's motivation (§1): maintain cubes from multiple city services
(bikes, car parks, air quality, auctions, sales) so planners can query
them together.  This example harvests a week from four feeds — two XML,
two JSON — loads each into the shared NoSQL warehouse, then answers the
kind of cross-service questions a dashboard would pose.

Run:  python examples/city_dashboard.py
"""

from repro import CubeConstructionPipeline
from repro.dwarf import Each, Member, select
from repro.mapping import NoSQLDwarfMapper
from repro.nosqldb import NoSQLEngine
from repro.smartcity import (
    AirQualityFeedGenerator,
    AuctionFeedGenerator,
    BikeFeedGenerator,
    CarParkFeedGenerator,
    CityModel,
    airquality_pipeline,
    auctions_pipeline,
    bikes_pipeline,
    carpark_pipeline,
)

DAYS = 7


def main() -> None:
    city = CityModel(seed=2015)
    engine = NoSQLEngine()                    # one warehouse for everything
    mapper = NoSQLDwarfMapper(engine)
    mapper.install()

    sources = {
        "bikes": (
            BikeFeedGenerator(city).generate_documents(DAYS, 25_000),
            bikes_pipeline(),
        ),
        "carparks": (
            CarParkFeedGenerator(city).generate_documents(DAYS, snapshots_per_day=24),
            carpark_pipeline(),
        ),
        "air": (
            AirQualityFeedGenerator(city).generate_documents(DAYS),
            airquality_pipeline(),
        ),
        "auctions": (
            AuctionFeedGenerator(city).generate_documents(DAYS),
            auctions_pipeline(),
        ),
    }

    cubes = {}
    for name, (documents, etl) in sources.items():
        pipeline = CubeConstructionPipeline(etl, mapper=None)  # keep AVG cubes in memory
        cube = pipeline.build(documents)
        cubes[name] = cube
        stored = ""
        if cube.schema.aggregator.name == "sum":  # paper stores int-SUM cubes
            schema_id = mapper.store(cube)
            stored = f" -> stored as schema_id={schema_id}"
        print(f"{name:9s} {cube.n_source_tuples:6d} facts, "
              f"{cube.stats.cell_count:7d} cells{stored}")

    print("\n--- morning-peak pressure, by district ---")
    bikes, air = cubes["bikes"], cubes["air"]
    for district in bikes.members("district")[:6]:
        bikes_free = bikes.value(district=district, daypart="morning-peak")
        no2 = air.value(district=district, daypart="morning-peak", pollutant="no2")
        no2_text = f"{no2:5.1f} µg/m³ NO2" if no2 is not None else "   no sensor  "
        print(f"{district:10s} free-bike readings sum {bikes_free:7d}   {no2_text}")

    print("\n--- car-park occupancy by zone and daypart ---")
    carparks = cubes["carparks"]
    for (zone, daypart), occupied in select(carparks, zone=Each(), daypart=Each()):
        print(f"{zone:12s} {daypart:13s} {occupied:8d} occupied-space readings")

    print("\n--- weekend auction turnover by category ---")
    auctions = cubes["auctions"]
    weekend = [d for d in auctions.members("day") if d in ("2015-06-06", "2015-06-07")]
    for category in auctions.members("category"):
        turnover = sum(
            value
            for day in weekend
            for value in [auctions.value(day=day, category=category)]
            if value is not None
        )
        print(f"{category:13s} EUR {turnover:7d}")

    print(f"\nwarehouse footprint: {mapper.size_bytes() / 1048576:.2f} MB "
          f"across {len(mapper.list_schemas())} stored schemas")


if __name__ == "__main__":
    main()
