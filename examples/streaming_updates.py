"""Streaming cube maintenance: windows, delta merges and derived cubes.

The paper's conclusion targets "cube updates through efficient query
primitives".  This example runs the incremental path:

* the feed arrives as a stream of snapshots, windowed by day;
* each window becomes a small delta DWARF merged into the standing cube
  (``merge_cubes``) instead of rebuilding from scratch;
* after each merge, a derived sub-cube (one district's slice) is stored
  back into the warehouse with the ``is_cube`` flag (paper Table 1-A);
* ROLLUP summarises stations to districts via a dimension hierarchy.

Run:  python examples/streaming_updates.py
"""

import time

from repro import CubeConstructionPipeline
from repro.dwarf import DimensionHierarchy, Member, extract_subcube, rollup
from repro.etl import window_by_period
from repro.mapping import NoSQLDwarfMapper
from repro.smartcity import BikeFeedGenerator, CityModel, bikes_pipeline

DAYS = 5
RECORDS = 20_000


def main() -> None:
    city = CityModel(seed=7)
    feed = BikeFeedGenerator(city)
    stream = feed.generate_documents(days=DAYS, total_records=RECORDS)

    mapper = NoSQLDwarfMapper()
    pipeline = CubeConstructionPipeline(bikes_pipeline(), mapper)

    def day_of(document):
        # windows close when the snapshot's day changes
        import re

        match = re.search(r'timestamp="(\d{4}-\d{2}-\d{2})', document.content)
        return match.group(1) if match else "?"

    print(f"streaming {len(stream)} snapshots in daily windows\n")
    standing = None
    for window in window_by_period(stream, day_of):
        started = time.perf_counter()
        if standing is None:
            standing = pipeline.build(window)
            action = "built"
        else:
            standing = pipeline.update(window)
            action = "merged"
        elapsed_ms = (time.perf_counter() - started) * 1000
        print(f"{action} window of {len(window):3d} docs in {elapsed_ms:7.1f} ms "
              f"-> cube now {standing.n_source_tuples:6d} facts, "
              f"{standing.stats.cell_count:7d} cells")

    # Store the final standing cube, then a derived district sub-cube.
    pipeline._ensure_installed()
    standing_id = mapper.store(standing)
    district = standing.members("district")[0]
    district_cube = extract_subcube(
        standing, {"district": Member(district)}, name=f"bikes[{district}]"
    )
    derived_id = mapper.store(district_cube, is_cube=True)
    print(f"\nstored standing cube as schema_id={standing_id}, "
          f"derived {district!r} sub-cube as schema_id={derived_id} "
          f"(is_cube={mapper.info(derived_id).is_cube})")
    assert mapper.load(derived_id).total() == standing.value(district=district)

    # ROLLUP stations to districts (hierarchical DWARF extension, §6).
    hierarchy = DimensionHierarchy(
        "station",
        [("district_group", {s.name: s.district for s in feed.stations})],
    )
    rolled = rollup(standing, "station", hierarchy, "district_group")
    print("\nROLLUP station -> district (top 5 by reading volume):")
    totals = sorted(
        ((rolled.value(district_group=g), g) for g in rolled.members("district_group")),
        reverse=True,
    )
    for total, group in totals[:5]:
        print(f"  {group:10s} {total:8d}")


if __name__ == "__main__":
    main()
