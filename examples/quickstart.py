"""Quickstart: from a harvested bike feed to a stored, queryable cube.

Reproduces the paper's headline pipeline in a few calls:

1. harvest a day of bike-share XML snapshots (synthetic Dublin feed);
2. run the ETL pipeline (XML -> records -> fact tuples);
3. build the DWARF cube (prefix + suffix coalescing);
4. store it in the columnar NoSQL warehouse through the bi-directional
   NoSQL-DWARF mapper (paper Table 1);
5. reload it from storage and answer OLAP point queries.

Run:  python examples/quickstart.py
"""

from repro import ALL, CubeConstructionPipeline
from repro.mapping import NoSQLDwarfMapper
from repro.smartcity import BikeFeedGenerator, bikes_pipeline


def main() -> None:
    # 1. One day of feed snapshots — the paper's "Day" dataset shape.
    feed = BikeFeedGenerator()
    documents = feed.generate_documents(days=1, total_records=7358)
    print(f"harvested {len(documents)} XML snapshots "
          f"({documents.batch().size_mb:.2f} MB)")

    # 2–4. ETL -> DWARF -> NoSQL store, one pipeline object.
    pipeline = CubeConstructionPipeline(bikes_pipeline(), NoSQLDwarfMapper())
    report = pipeline.run(documents)
    print(f"extracted {report.n_facts} fact tuples; "
          f"DWARF has {report.n_nodes} nodes / {report.n_cells} cells; "
          f"stored as schema_id={report.schema_id} ({report.stored_mb} MB)")

    # 5. Bi-directional: rebuild the cube from the column families.
    cube = pipeline.reload(report.schema_id)
    assert cube.total() == pipeline.last_cube.total()

    # Point queries (any mix of fixed members and ALL).
    station = cube.members("station")[0]
    print(f"\ntotal available bikes over all readings: {cube.total()}")
    print(f"bikes at {station!r} (all day):            "
          f"{cube.value(station=station)}")
    print(f"bikes during the morning peak:            "
          f"{cube.value(daypart='morning-peak')}")
    print(f"bikes in Dublin 2 during the morning:     "
          f"{cube.value(district='Dublin 2', daypart='morning-peak')}")

    # Positional form: one coordinate per dimension, ALL to aggregate.
    vector = [ALL] * cube.schema.n_dimensions
    vector[cube.schema.dimension_index("status")] = "OPEN"
    print(f"bikes at OPEN stations:                   {cube.value(vector)}")


if __name__ == "__main__":
    main()
