"""XML cube interchange (XCube-style, §6 related work)."""

import pytest

from repro.core.errors import PipelineError
from repro.core.schema import CubeSchema
from repro.dwarf.builder import build_cube
from repro.dwarf.xml_io import export_cube_xml, import_cube_xml


class TestRoundTrip:
    def test_sample_cube(self, sample_cube):
        document = export_cube_xml(sample_cube)
        rebuilt = import_cube_xml(document)
        assert sorted(rebuilt.leaves()) == sorted(sample_cube.leaves())
        assert rebuilt.total() == sample_cube.total()
        assert rebuilt.schema.dimension_names == sample_cube.schema.dimension_names
        assert rebuilt.schema.dimensions[2].dimension_table == "Station"

    def test_aggregates_preserved(self, sample_cube):
        from repro.dwarf.cell import ALL

        rebuilt = import_cube_xml(export_cube_xml(sample_cube))
        assert rebuilt.value(["Ireland", ALL, ALL]) == 10

    def test_mixed_member_types(self):
        schema = CubeSchema("m", ["day", "hour", "flag"])
        cube = build_cube(
            [("2015-06-01", 8, True, 3), ("2015-06-01", 9, False, -2), ("d", 8, True, 7)],
            schema,
        )
        rebuilt = import_cube_xml(export_cube_xml(cube))
        assert sorted(rebuilt.leaves()) == sorted(cube.leaves())
        # types survive: int hour, bool flag
        assert 8 in rebuilt.members("hour")
        assert True in rebuilt.members("flag")

    def test_special_characters_escaped(self):
        schema = CubeSchema("s", ["name"])
        cube = build_cube([("<O'Connell & Sons> \"Ltd\"", 1)], schema)
        rebuilt = import_cube_xml(export_cube_xml(cube))
        assert rebuilt.members("name") == ("<O'Connell & Sons> \"Ltd\"",)

    def test_float_measures(self):
        schema = CubeSchema("f", ["k"], aggregator="avg")
        cube = build_cube([("a", 1.25), ("a", 2.75)], schema)
        rebuilt = import_cube_xml(export_cube_xml(cube))
        assert rebuilt.value(k="a") == pytest.approx(cube.value(k="a"))
        assert rebuilt.schema.aggregator.name == "avg"

    def test_bike_feed_cube(self, bike_bundle):
        _, _, cube = bike_bundle
        rebuilt = import_cube_xml(export_cube_xml(cube))
        assert rebuilt.total() == cube.total()
        assert rebuilt.stats.cell_count == cube.stats.cell_count


class TestValidation:
    def test_malformed_xml(self):
        with pytest.raises(PipelineError, match="malformed"):
            import_cube_xml("<cube")

    def test_wrong_root(self):
        with pytest.raises(PipelineError, match="not a cube"):
            import_cube_xml("<stations/>")

    def test_wrong_version(self):
        with pytest.raises(PipelineError, match="version"):
            import_cube_xml('<cube name="x" version="9.9" measure="m" aggregator="sum"/>')

    def test_fact_arity_checked(self, sample_cube):
        document = export_cube_xml(sample_cube).replace(
            '<d t="str">Paris</d>', "", 1
        )
        with pytest.raises(PipelineError, match="does not match"):
            import_cube_xml(document)

    def test_missing_sections(self):
        with pytest.raises(PipelineError, match="misses"):
            import_cube_xml('<cube name="x" version="1.0" measure="m" aggregator="sum"/>')
