"""Property-based delta maintenance: merge == rebuild, in any order.

The algebra the append path rests on (docs/incremental_maintenance.md):
folding delta cubes into a base with the multi-way SuffixCoalesce merge
must be structurally identical to one cold rebuild over the union of
every input's facts, regardless of how the facts were partitioned, the
order the deltas fold in, or whether they fold all at once or one at a
time.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.delta_check import delta_check
from repro.analysis.dwarf_check import dwarf_check, structural_signature
from repro.core.errors import SchemaError
from repro.core.schema import CubeSchema
from repro.dwarf.builder import DwarfBuilder
from repro.dwarf.delta import DeltaDwarfBuilder, merge_many

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.sampled_from([1, 2, 3, 4]),
        st.sampled_from(["x", "y", "z", "w"]),
        st.integers(min_value=-100, max_value=100),
    ),
    min_size=1,
    max_size=30,
)

# How to split the row list into base + deltas: fractional cut points.
cuts_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=3
)


def _partition(rows, cuts):
    bounds = sorted({int(round(cut * len(rows))) for cut in cuts})
    parts, start = [], 0
    for bound in bounds + [len(rows)]:
        parts.append(rows[start:bound])
        start = bound
    return [part for part in parts if part] or [rows]


def _schema():
    return CubeSchema("delta-prop", ["d1", "d2", "d3"])


@given(rows=rows_strategy, cuts=cuts_strategy)
@settings(max_examples=30, deadline=None)
def test_merge_equals_rebuild_over_union(rows, cuts):
    schema = _schema()
    parts = _partition(rows, cuts)
    builder = DeltaDwarfBuilder(schema)
    cubes = [builder.build_delta(part) for part in parts]
    merged = builder.merge(cubes[0], *cubes[1:])
    rebuild = DwarfBuilder(schema).build(rows)
    assert structural_signature(merged) == structural_signature(rebuild)
    assert merged.n_source_tuples == rebuild.n_source_tuples
    assert dwarf_check(merged).ok


@given(rows=rows_strategy, cuts=cuts_strategy)
@settings(max_examples=30, deadline=None)
def test_merge_is_order_insensitive_and_associative(rows, cuts):
    schema = _schema()
    parts = _partition(rows, cuts)
    builder = DeltaDwarfBuilder(schema)
    cubes = [builder.build_delta(part) for part in parts]
    base, deltas = cubes[0], cubes[1:]
    expected = structural_signature(builder.merge(base, *deltas))

    reversed_merge = DeltaDwarfBuilder(schema).merge(base, *reversed(deltas))
    assert structural_signature(reversed_merge) == expected

    folded = base
    left_fold = DeltaDwarfBuilder(schema)
    for delta in deltas:
        folded = left_fold.merge(folded, delta)
    assert structural_signature(folded) == expected


@given(rows=rows_strategy, cuts=cuts_strategy)
@settings(max_examples=15, deadline=None)
def test_delta_check_rule_passes_on_random_partitions(rows, cuts):
    report = delta_check(_schema(), _partition(rows, cuts))
    assert report.ok, report.format_lines()


def test_merge_with_no_deltas_returns_base():
    schema = _schema()
    builder = DeltaDwarfBuilder(schema)
    base = builder.build_delta([("a", 1, "x", 5)])
    assert builder.merge(base) is base


def test_merge_rejects_schema_mismatch():
    builder = DeltaDwarfBuilder(_schema())
    base = builder.build_delta([("a", 1, "x", 5)])
    other = DwarfBuilder(CubeSchema("other", ["p", "q", "r"])).build(
        [("a", 1, "x", 5)]
    )
    with pytest.raises(SchemaError):
        builder.merge(base, other)


def test_persistent_memo_seeds_follow_up_merges():
    schema = _schema()
    builder = DeltaDwarfBuilder(schema)
    base = builder.build_delta([("a", 1, "x", 5), ("b", 2, "y", 7)])
    merged = builder.merge(base, builder.build_delta([("c", 3, "z", 1)]))
    seeded = builder.memo_size
    assert seeded > 0
    # A second fold reuses the surviving memo entries instead of starting
    # cold; resetting drops them.
    builder.merge(merged, builder.build_delta([("a", 4, "w", 2)]))
    builder.reset_memo()
    assert builder.memo_size == 0


def test_merge_many_convenience_matches_builder():
    schema = _schema()
    rows = [("a", 1, "x", 5), ("b", 2, "y", 7), ("c", 3, "z", 1)]
    builder = DeltaDwarfBuilder(schema)
    cubes = [builder.build_delta([row]) for row in rows]
    via_helper = merge_many(cubes[0], cubes[1:])
    rebuild = DwarfBuilder(schema).build(rows)
    assert structural_signature(via_helper) == structural_signature(rebuild)
