"""Property-based equivalence of the partitioned and serial builders.

Two hypotheses the fast paths must never falsify:

* ``ParallelDwarfBuilder`` produces a cube structurally identical to
  ``DwarfBuilder`` for any tuple set, including ones dense with duplicate
  dimension vectors (the fold-into-leaf path) — same transformation
  records, same answers to every point and range query.
* ``merge_cubes(build(A), build(B))`` answers every point and range query
  identically to ``build(A + B)`` — the incremental-maintenance primitive
  is indistinguishable from a rebuild.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.schema import CubeSchema
from repro.dwarf.builder import DwarfBuilder, build_cube, merge_cubes
from repro.dwarf.cell import ALL
from repro.dwarf.parallel import ParallelDwarfBuilder
from repro.dwarf.query import All, Member, Range, select
from repro.mapping.base import transform_cube

# A small member pool makes duplicate dimension vectors common, which is
# exactly the regime where partition boundaries and leaf folding interact.
_MEMBERS = ["a", "b", "c", "d"]

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(_MEMBERS),
        st.sampled_from(_MEMBERS),
        st.sampled_from(_MEMBERS),
        st.integers(min_value=-50, max_value=50),
    ),
    min_size=1,
    max_size=60,
)

coords_strategy = st.tuples(
    st.sampled_from(_MEMBERS + [None]),
    st.sampled_from(_MEMBERS + [None]),
    st.sampled_from(_MEMBERS + [None]),
)

range_strategy = st.tuples(
    st.sampled_from(_MEMBERS), st.sampled_from(_MEMBERS)
)


def _schema():
    return CubeSchema("par-prop", ["x", "y", "z"])


def _parallel(rows, workers):
    return ParallelDwarfBuilder(
        _schema(), workers=workers, mode="thread", min_parallel_tuples=2
    ).build(rows)


def _range_rows(cube, bounds):
    lo, hi = min(bounds), max(bounds)
    return sorted(select(cube, x=Range(lo, hi), y=All(), z=All()))


@given(rows=rows_strategy, workers=st.integers(min_value=2, max_value=4))
@settings(max_examples=80, deadline=None)
def test_parallel_build_structurally_identical(rows, workers):
    serial = build_cube(rows, _schema())
    parallel = _parallel(rows, workers)
    s, p = transform_cube(serial), transform_cube(parallel)
    assert s.nodes == p.nodes
    assert s.cells == p.cells
    assert serial.n_merges == parallel.n_merges


@given(rows=rows_strategy, coords=coords_strategy)
@settings(max_examples=60, deadline=None)
def test_parallel_point_queries_match_serial(rows, coords):
    serial = build_cube(rows, _schema())
    parallel = _parallel(rows, workers=3)
    vector = [ALL if c is None else c for c in coords]
    assert parallel.value(vector) == serial.value(vector)


@given(rows=rows_strategy, bounds=range_strategy)
@settings(max_examples=60, deadline=None)
def test_parallel_range_queries_match_serial(rows, bounds):
    serial = build_cube(rows, _schema())
    parallel = _parallel(rows, workers=2)
    assert _range_rows(parallel, bounds) == _range_rows(serial, bounds)


@given(
    rows=rows_strategy,
    split=st.integers(min_value=1, max_value=59),
    coords=coords_strategy,
)
@settings(max_examples=80, deadline=None)
def test_merged_cubes_answer_point_queries_like_rebuild(rows, split, coords):
    if split >= len(rows):
        return
    schema = _schema()
    merged = merge_cubes(
        build_cube(rows[:split], schema), build_cube(rows[split:], schema)
    )
    whole = build_cube(rows, schema)
    vector = [ALL if c is None else c for c in coords]
    assert merged.value(vector) == whole.value(vector)


@given(rows=rows_strategy, split=st.integers(min_value=1, max_value=59),
       bounds=range_strategy)
@settings(max_examples=60, deadline=None)
def test_merged_cubes_answer_range_queries_like_rebuild(rows, split, bounds):
    if split >= len(rows):
        return
    schema = _schema()
    merged = merge_cubes(
        build_cube(rows[:split], schema), build_cube(rows[split:], schema)
    )
    whole = build_cube(rows, schema)
    assert _range_rows(merged, bounds) == _range_rows(whole, bounds)
    for member in _MEMBERS:
        got = sorted(select(merged, x=Member(member)))
        want = sorted(select(whole, x=Member(member)))
        assert got == want
