"""Sub-cube extraction: the is_cube query of paper §3."""

import pytest

from repro.dwarf.builder import build_cube
from repro.dwarf.query import In, Member, Range
from repro.dwarf.subcube import extract_subcube

from tests.conftest import SAMPLE_ROWS


class TestExtract:
    def test_member_filter(self, sample_cube):
        sub = extract_subcube(sample_cube, country=Member("Ireland"))
        assert sub.total() == 10
        assert sub.n_source_tuples == 3
        assert sub.members("country") == ("Ireland",)

    def test_subcube_is_fully_queryable(self, sample_cube):
        from repro.dwarf.cell import ALL

        sub = extract_subcube(sample_cube, country=Member("Ireland"))
        assert sub.value(["Ireland", "Dublin", ALL]) == 8
        assert sub.value(city="Cork") == 2

    def test_in_filter(self, sample_cube):
        sub = extract_subcube(sample_cube, city=In(["Dublin", "Paris"]))
        assert sub.total() == 15

    def test_range_filter(self):
        from repro.core.schema import CubeSchema

        schema = CubeSchema("h", ["hour", "station"])
        cube = build_cube([(8, "a", 1), (9, "a", 2), (17, "b", 4)], schema)
        sub = extract_subcube(cube, hour=Range(8, 9))
        assert sub.total() == 3

    def test_unconstrained_extraction_copies(self, sample_cube):
        sub = extract_subcube(sample_cube)
        assert sorted(sub.leaves()) == sorted(sample_cube.leaves())

    def test_renamed_subcube(self, sample_cube):
        sub = extract_subcube(sample_cube, {"country": Member("France")}, name="france")
        assert sub.schema.name == "france"
        assert sub.schema.dimension_names == sample_cube.schema.dimension_names

    def test_source_cube_untouched(self, sample_cube):
        before = sorted(sample_cube.leaves())
        extract_subcube(sample_cube, country=Member("Ireland"))
        assert sorted(sample_cube.leaves()) == before

    def test_empty_result_is_empty_cube(self, sample_cube):
        sub = extract_subcube(sample_cube, country=Member("Spain"))
        assert sub.total() is None
        assert sub.n_source_tuples == 0
