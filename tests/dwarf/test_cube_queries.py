"""DwarfCube query surface: value(), members(), leaves(), coordinates."""

import pytest

from repro.core.errors import QueryError
from repro.dwarf.cell import ALL


class TestValue:
    def test_keyword_form(self, sample_cube):
        assert sample_cube.value(country="Ireland") == 10
        assert sample_cube.value(country="Ireland", city="Dublin") == 8

    def test_mapping_form(self, sample_cube):
        assert sample_cube.value({"city": "Paris"}) == 7

    def test_positional_form(self, sample_cube):
        assert sample_cube.value(["Ireland", "Dublin", "Portobello"]) == 5

    def test_missing_member_returns_none(self, sample_cube):
        assert sample_cube.value(country="Spain") is None
        assert sample_cube.value(["Ireland", "Dublin", "Nowhere"]) is None

    def test_wrong_arity_raises(self, sample_cube):
        with pytest.raises(QueryError, match="expected 3 coordinates"):
            sample_cube.value(["Ireland"])

    def test_both_forms_raises(self, sample_cube):
        with pytest.raises(QueryError):
            sample_cube.value(["Ireland", ALL, ALL], country="Ireland")

    def test_unknown_dimension_raises(self, sample_cube):
        from repro.core.errors import SchemaError

        with pytest.raises(SchemaError):
            sample_cube.value(planet="Earth")

    def test_no_constraints_is_total(self, sample_cube):
        assert sample_cube.value() == sample_cube.total() == 17


class TestMembers:
    def test_members_of_each_level(self, sample_cube):
        assert sample_cube.members("country") == ("France", "Ireland")
        assert set(sample_cube.members("city")) == {"Cork", "Dublin", "Paris"}
        assert len(sample_cube.members("station")) == 4

    def test_members_sorted(self, sample_cube):
        cities = sample_cube.members("city")
        assert list(cities) == sorted(cities)


class TestLeaves:
    def test_leaves_match_source_rows(self, sample_cube):
        from tests.conftest import SAMPLE_ROWS

        expected = sorted((tuple(r[:-1]), r[-1]) for r in SAMPLE_ROWS)
        assert sorted(sample_cube.leaves()) == expected

    def test_leaves_aggregate_duplicates(self, sample_schema):
        from repro.dwarf.builder import build_cube

        cube = build_cube([("A", "B", "C", 1), ("A", "B", "C", 2)], sample_schema)
        assert list(cube.leaves()) == [(("A", "B", "C"), 3)]


class TestStatsCaching:
    def test_stats_cached(self, sample_cube):
        assert sample_cube.stats is sample_cube.stats

    def test_repr(self, sample_cube):
        assert "bikes" in repr(sample_cube)
