"""ParallelDwarfBuilder — structural identity with the serial builder.

The partitioned build must be indistinguishable from the serial scan:
same DAG topology (asserted through the transformation's node/cell
records, which encode the full reachable structure), same merge count,
same query answers.  Covered across thread and process pools, fallback
modes, and worker resolution.
"""

import os

import pytest

from repro.core.schema import CubeSchema
from repro.core.tuples import TupleSet
from repro.dwarf.builder import DwarfBuilder, build_cube
from repro.dwarf.cell import ALL
from repro.dwarf.parallel import (
    MIN_PARALLEL_TUPLES,
    ParallelDwarfBuilder,
    build_cube_parallel,
    resolve_workers,
)
from repro.mapping.base import transform_cube


def _schema(n_dims=3):
    return CubeSchema("par", [f"d{i}" for i in range(n_dims)])


def _rows(n=300, n_dims=3, card=5, dupes=True):
    """Deterministic rows with many duplicate dimension vectors."""
    rows = []
    for i in range(n):
        vector = tuple(f"m{(i * (d + 3)) % card}" for d in range(n_dims))
        rows.append(vector + (i % 11 - 5,))
        if dupes and i % 4 == 0:
            rows.append(vector + (1,))  # duplicate vector, folded measure
    return rows


def _assert_identical(serial, parallel):
    s, p = transform_cube(serial), transform_cube(parallel)
    assert s.nodes == p.nodes
    assert s.cells == p.cells
    assert serial.n_merges == parallel.n_merges
    assert serial.total() == parallel.total()


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_structure_identical_to_serial(mode):
    schema = _schema()
    rows = _rows()
    serial = build_cube(rows, schema)
    parallel = ParallelDwarfBuilder(
        schema, workers=3, mode=mode, min_parallel_tuples=2
    ).build(rows)
    _assert_identical(serial, parallel)


def test_structure_identical_high_dims_and_dupes():
    schema = _schema(5)
    rows = _rows(n=400, n_dims=5, card=3)
    serial = build_cube(rows, schema)
    parallel = ParallelDwarfBuilder(
        schema, workers=4, mode="thread", min_parallel_tuples=2
    ).build(rows)
    _assert_identical(serial, parallel)


def test_query_answers_match_serial():
    schema = _schema()
    rows = _rows(n=200)
    serial = build_cube(rows, schema)
    parallel = ParallelDwarfBuilder(
        schema, workers=2, mode="thread", min_parallel_tuples=2
    ).build(rows)
    members = serial.members("d0")
    for member in list(members) + [ALL]:
        assert parallel.value([member, ALL, ALL]) == serial.value([member, ALL, ALL])
    assert dict(parallel.leaves()) == dict(serial.leaves())


def test_empty_input_builds_empty_cube():
    cube = ParallelDwarfBuilder(_schema()).build([])
    assert cube.n_source_tuples == 0
    assert cube.total() is None or cube.total() == 0


def test_single_first_dimension_group_falls_back_to_serial():
    # Every row shares its first member, so there is exactly one partition
    # and the builder must route through the plain serial path.
    schema = _schema()
    rows = [("only", f"m{i % 5}", f"k{i % 3}", i) for i in range(100)]
    serial = build_cube(rows, schema)
    parallel = ParallelDwarfBuilder(
        schema, workers=4, mode="thread", min_parallel_tuples=2
    ).build(rows)
    _assert_identical(serial, parallel)


def test_small_inputs_use_serial_mode():
    builder = ParallelDwarfBuilder(_schema(), workers=4, mode="auto")
    assert builder._effective_mode(MIN_PARALLEL_TUPLES - 1) == "serial"


def test_workers_one_forces_serial():
    builder = ParallelDwarfBuilder(_schema(), workers=1, mode="auto")
    assert builder._effective_mode(1_000_000) == "serial"


def test_coalesce_off_routes_serial():
    builder = ParallelDwarfBuilder(_schema(), coalesce=False, workers=4)
    assert builder._effective_mode(1_000_000) == "serial"
    rows = _rows(n=50)
    assert builder.build(rows).total() == build_cube(rows, _schema(), coalesce=False).total()


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        ParallelDwarfBuilder(_schema(), mode="fibers")


def test_resolve_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "7")
    assert resolve_workers() == 7
    assert resolve_workers(3) == 3  # explicit argument wins
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert resolve_workers() == 1  # floored at one worker
    monkeypatch.delenv("REPRO_WORKERS")
    assert resolve_workers() == (os.cpu_count() or 1)


def test_build_cube_parallel_convenience():
    schema = _schema()
    rows = _rows(n=150)
    facts = TupleSet(schema, rows)
    cube = build_cube_parallel(facts, workers=2, mode="thread")
    assert cube.total() == build_cube(rows, schema).total()
    with pytest.raises(Exception):
        build_cube_parallel(rows)  # plain iterable needs an explicit schema


def test_partition_boundaries_respect_first_dimension():
    schema = _schema()
    rows = sorted(_rows(n=300), key=lambda r: str(r[0]))
    builder = ParallelDwarfBuilder(schema, workers=3, min_parallel_tuples=2)
    ordered = TupleSet(schema, rows).sorted()
    partitions = builder._partition(ordered)
    assert sum(len(p) for p in partitions) == len(ordered)
    seen = set()
    for chunk in partitions:
        members = {fact.keys[0] for fact in chunk}
        assert not members & seen  # no first-dim member straddles chunks
        seen |= members


def test_pipeline_builds_through_parallel_builder():
    # The construction pipeline wires its workers argument through to the
    # parallel builder and still yields the serial cube exactly.
    from repro.core.pipeline import CubeConstructionPipeline

    schema = _schema()
    rows = _rows(n=120)

    class _StubMapping:
        pass

    class _StubETL:
        mapping = _StubMapping()
        mapping.schema = schema
        n_documents = 1
        n_records = len(rows)

        def extract(self, documents):
            return TupleSet(schema, rows)

    pipeline = CubeConstructionPipeline(_StubETL(), workers=2)
    assert pipeline.workers == 2
    cube = pipeline.build([object()])
    _assert_identical(build_cube(rows, schema), cube)
