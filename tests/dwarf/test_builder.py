"""DWARF construction: structure, coalescing and aggregate correctness."""

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import CubeSchema
from repro.core.tuples import TupleSet
from repro.dwarf.builder import DwarfBuilder, build_cube
from repro.dwarf.cell import ALL
from repro.dwarf.stats import compute_stats
from repro.dwarf.traversal import iter_nodes

from tests.conftest import SAMPLE_ROWS


class TestBasicConstruction:
    def test_root_has_top_dimension_members(self, sample_cube):
        assert set(sample_cube.root.keys()) == {"Ireland", "France"}

    def test_every_node_is_closed(self, sample_cube):
        for node in iter_nodes(sample_cube.root):
            assert node.is_closed

    def test_total_is_sum_of_measures(self, sample_cube):
        assert sample_cube.total() == 17

    def test_point_values(self, sample_cube):
        assert sample_cube.value(["Ireland", "Dublin", "Fenian St"]) == 3
        assert sample_cube.value(["France", "Paris", "Rue Cler"]) == 7

    def test_partial_aggregates(self, sample_cube):
        assert sample_cube.value(["Ireland", ALL, ALL]) == 10
        assert sample_cube.value(["Ireland", "Dublin", ALL]) == 8
        assert sample_cube.value([ALL, "Dublin", ALL]) == 8

    def test_unsorted_input_gives_same_cube(self, sample_schema):
        shuffled = [SAMPLE_ROWS[2], SAMPLE_ROWS[0], SAMPLE_ROWS[3], SAMPLE_ROWS[1]]
        cube = build_cube(shuffled, sample_schema)
        assert sorted(cube.leaves()) == sorted(build_cube(SAMPLE_ROWS, sample_schema).leaves())
        assert cube.total() == 17

    def test_n_source_tuples_recorded(self, sample_cube):
        assert sample_cube.n_source_tuples == 4


class TestDuplicateTuples:
    def test_duplicate_vectors_aggregate(self, sample_schema):
        rows = [("IE", "D", "S1", 2), ("IE", "D", "S1", 3)]
        cube = build_cube(rows, sample_schema)
        assert cube.value(["IE", "D", "S1"]) == 5
        assert cube.total() == 5

    def test_duplicates_do_not_add_cells(self, sample_schema):
        rows = [("IE", "D", "S1", 2)] * 5
        cube = build_cube(rows, sample_schema)
        # one member per level + one ALL cell per node
        assert cube.stats.leaf_cell_count == 2  # S1 + the leaf ALL cell


class TestSingleDimension:
    def test_one_dimension_cube(self):
        schema = CubeSchema("one", ["k"])
        cube = build_cube([("a", 1), ("b", 2)], schema)
        assert cube.value(["a"]) == 1
        assert cube.total() == 3
        assert cube.root.level == 0
        assert cube.root.all_cell.is_leaf


class TestSuffixCoalescing:
    def test_single_cell_node_shares_subdwarf(self, sample_schema):
        cube = build_cube([("IE", "D", "S1", 2), ("IE", "D", "S2", 3)], sample_schema)
        # country node has one cell 'IE'; its ALL must point at IE's node.
        ie_cell = cube.root.cell("IE")
        assert cube.root.all_cell.node is ie_cell.node

    def test_coalescing_shrinks_cube(self, sample_facts):
        coalesced = DwarfBuilder(sample_facts.schema, coalesce=True).build(sample_facts)
        exploded = DwarfBuilder(sample_facts.schema, coalesce=False).build(sample_facts)
        c_stats = compute_stats(coalesced)
        e_stats = compute_stats(exploded)
        assert c_stats.node_count < e_stats.node_count
        assert c_stats.shared_node_count > 0
        assert e_stats.shared_node_count == 0

    def test_no_coalesce_cube_answers_identically(self, sample_facts):
        coalesced = DwarfBuilder(sample_facts.schema, coalesce=True).build(sample_facts)
        exploded = DwarfBuilder(sample_facts.schema, coalesce=False).build(sample_facts)
        probes = [
            ["Ireland", ALL, ALL],
            [ALL, "Dublin", ALL],
            [ALL, ALL, "Rue Cler"],
            [ALL, ALL, ALL],
            ["France", "Paris", "Rue Cler"],
        ]
        for probe in probes:
            assert coalesced.value(probe) == exploded.value(probe)

    def test_merge_memoisation_shares_views(self, sample_schema):
        # Two countries with identical city/station sub-structure: the
        # ALL-subtree merges coalesce.
        rows = [
            ("A", "X", "s1", 1), ("A", "Y", "s2", 2),
            ("B", "X", "s1", 4), ("B", "Y", "s2", 8),
        ]
        cube = build_cube(rows, sample_schema)
        assert cube.value([ALL, "X", "s1"]) == 5
        assert cube.value([ALL, ALL, "s2"]) == 10


class TestEdgeCases:
    def test_empty_input_builds_empty_cube(self, sample_schema):
        cube = build_cube([], sample_schema)
        assert cube.total() is None
        assert cube.n_source_tuples == 0
        assert list(cube.leaves()) == []

    def test_build_cube_without_schema_rejects_plain_iterable(self):
        with pytest.raises(SchemaError):
            build_cube([("a", 1)])

    def test_build_cube_uses_tupleset_schema(self, sample_schema):
        ts = TupleSet(sample_schema, SAMPLE_ROWS)
        assert build_cube(ts).schema is sample_schema

    def test_mixed_type_members_in_one_dimension(self):
        schema = CubeSchema("m", ["k", "j"])
        cube = build_cube([(1, "a", 1), ("x", "b", 2), (2, "a", 4)], schema)
        assert cube.value([1, ALL]) == 1
        assert cube.value(["x", ALL]) == 2
        assert cube.total() == 7

    def test_negative_measures(self, sample_schema):
        cube = build_cube([("A", "B", "C", -5), ("A", "B", "D", 3)], sample_schema)
        assert cube.value(["A", ALL, ALL]) == -2


class TestAggregatorVariants:
    @pytest.mark.parametrize(
        "agg,expected_total", [("sum", 17), ("count", 4), ("min", 2), ("max", 7)]
    )
    def test_distributive_aggregators(self, agg, expected_total):
        schema = CubeSchema("c", ["country", "city", "station"], aggregator=agg)
        cube = build_cube(SAMPLE_ROWS, schema)
        assert cube.total() == expected_total

    def test_avg_cube(self):
        schema = CubeSchema("c", ["country", "city", "station"], aggregator="avg")
        cube = build_cube(SAMPLE_ROWS, schema)
        assert cube.total() == pytest.approx(17 / 4)
        assert cube.value(country="Ireland") == pytest.approx(10 / 3)
