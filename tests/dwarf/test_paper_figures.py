"""The paper's illustrative figures, asserted structurally.

Fig. 1 shows a tuple list ``(dimension_1, ..., dimension_n, measure)``;
Fig. 2 the resulting DWARF with a root node whose top cells include
``Ireland`` and ``France`` and a leaf cell ``"Fenian St"`` with measure 3
(also the cell used in Fig. 3's transformation example).
"""

from repro.dwarf.cell import ALL
from repro.dwarf.builder import build_cube
from repro.dwarf.traversal import iter_nodes

from tests.conftest import SAMPLE_ROWS


def test_fig1_input_format(sample_schema):
    """Input is a flat tuple list, last element the measure."""
    cube = build_cube(SAMPLE_ROWS, sample_schema)
    assert cube.n_source_tuples == len(SAMPLE_ROWS)


class TestFig2Structure:
    def test_root_node_contains_top_cells(self, sample_cube):
        """'At the top level of the tree ... there is a root node'."""
        assert sample_cube.root.level == 0
        assert "Ireland" in sample_cube.root
        assert "France" in sample_cube.root

    def test_cells_point_to_child_nodes(self, sample_cube):
        """'It has a reference key and points to a DWARF node which
        contains all of its child cells.'"""
        ireland = sample_cube.root.cell("Ireland")
        assert not ireland.is_leaf
        assert set(ireland.node.keys()) == {"Cork", "Dublin"}

    def test_leaf_cell_holds_the_measure(self, sample_cube):
        """'The value of a leaf cell is derived from the measure item' —
        Fenian St carries measure 3 (Fig. 3)."""
        dublin = sample_cube.root.cell("Ireland").node.cell("Dublin")
        fenian = dublin.node.cell("Fenian St")
        assert fenian.is_leaf
        assert fenian.value == 3

    def test_cell_value_is_childs_aggregate(self, sample_cube):
        """'The value of a DWARF cell is synonymous with its child's
        aggregate cell': following Ireland's ALL path gives Ireland's sum."""
        ireland = sample_cube.root.cell("Ireland")
        aggregate = sample_cube.value(["Ireland", ALL, ALL])
        assert aggregate == 2 + 3 + 5

    def test_multiple_inheritance_exists(self, sample_cube):
        """'Nodes can have multiple parent cells' (§4)."""
        parents = {}
        for node in iter_nodes(sample_cube.root):
            for cell in node.all_cells():
                if cell.node is not None:
                    parents.setdefault(id(cell.node), 0)
                    parents[id(cell.node)] += 1
        assert any(count > 1 for count in parents.values())

    def test_tree_depth_equals_dimensions(self, sample_cube):
        assert sample_cube.stats.max_depth == sample_cube.schema.n_dimensions - 1
