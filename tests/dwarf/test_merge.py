"""merge_cubes: the incremental-maintenance primitive."""

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import CubeSchema
from repro.dwarf.builder import build_cube, merge_cubes

from tests.conftest import SAMPLE_ROWS


class TestMerge:
    def test_merge_equals_rebuild(self, sample_schema):
        left = build_cube(SAMPLE_ROWS[:2], sample_schema)
        right = build_cube(SAMPLE_ROWS[2:], sample_schema)
        merged = merge_cubes(left, right)
        rebuilt = build_cube(SAMPLE_ROWS, sample_schema)
        assert sorted(merged.leaves()) == sorted(rebuilt.leaves())
        assert merged.total() == rebuilt.total()

    def test_merge_aggregates_common_vectors(self, sample_schema):
        left = build_cube([("A", "B", "C", 1)], sample_schema)
        right = build_cube([("A", "B", "C", 2)], sample_schema)
        merged = merge_cubes(left, right)
        assert merged.value(["A", "B", "C"]) == 3

    def test_merge_partial_aggregates_correct(self, sample_schema):
        left = build_cube(SAMPLE_ROWS[:3], sample_schema)
        right = build_cube(SAMPLE_ROWS[3:], sample_schema)
        merged = merge_cubes(left, right)
        from repro.dwarf.cell import ALL

        assert merged.value(["Ireland", "Dublin", ALL]) == 8
        assert merged.value([ALL, ALL, ALL]) == 17

    def test_tuple_counts_add(self, sample_schema):
        left = build_cube(SAMPLE_ROWS[:2], sample_schema)
        right = build_cube(SAMPLE_ROWS[2:], sample_schema)
        assert merge_cubes(left, right).n_source_tuples == 4

    def test_schema_mismatch_rejected(self, sample_schema):
        other = CubeSchema("other", ["a", "b", "c"])
        left = build_cube(SAMPLE_ROWS, sample_schema)
        right = build_cube([("x", "y", "z", 1)], other)
        with pytest.raises(SchemaError, match="different schemas"):
            merge_cubes(left, right)

    def test_inputs_unmodified(self, sample_schema):
        left = build_cube(SAMPLE_ROWS[:2], sample_schema)
        right = build_cube(SAMPLE_ROWS[2:], sample_schema)
        before_left = sorted(left.leaves())
        before_right = sorted(right.leaves())
        merge_cubes(left, right)
        assert sorted(left.leaves()) == before_left
        assert sorted(right.leaves()) == before_right

    def test_iterated_window_merging(self, sample_schema):
        """Stream-window pattern: repeated delta merges equal one rebuild."""
        rows = [(f"c{i % 3}", f"t{i % 5}", f"s{i}", i) for i in range(40)]
        standing = build_cube(rows[:10], sample_schema)
        for start in range(10, 40, 10):
            delta = build_cube(rows[start:start + 10], sample_schema)
            standing = merge_cubes(standing, delta)
        rebuilt = build_cube(rows, sample_schema)
        assert sorted(standing.leaves()) == sorted(rebuilt.leaves())
        assert standing.total() == rebuilt.total()
