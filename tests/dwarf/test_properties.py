"""Property-based DWARF invariants (hypothesis).

The central one: every point query against the cube — with any mix of
fixed members and ALL — equals a brute-force aggregation over the input
rows.  If this holds for random inputs, prefix/suffix coalescing never
corrupted an aggregate.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.schema import CubeSchema
from repro.dwarf.builder import DwarfBuilder, build_cube, merge_cubes
from repro.dwarf.cell import ALL

from tests.conftest import brute_force_value

_MEMBERS = ["a", "b", "c", "d"]

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(_MEMBERS),
        st.sampled_from(_MEMBERS),
        st.sampled_from(_MEMBERS),
        st.integers(min_value=-50, max_value=50),
    ),
    min_size=1,
    max_size=40,
)

coords_strategy = st.tuples(
    st.sampled_from(_MEMBERS + [None]),
    st.sampled_from(_MEMBERS + [None]),
    st.sampled_from(_MEMBERS + [None]),
)


def _schema():
    return CubeSchema("prop", ["x", "y", "z"])


@given(rows=rows_strategy, coords=coords_strategy)
@settings(max_examples=150, deadline=None)
def test_any_point_query_matches_brute_force(rows, coords):
    cube = build_cube(rows, _schema())
    expected = brute_force_value(rows, coords)
    vector = [ALL if c is None else c for c in coords]
    assert cube.value(vector) == expected


@given(rows=rows_strategy)
@settings(max_examples=80, deadline=None)
def test_total_is_sum_of_all_measures(rows):
    cube = build_cube(rows, _schema())
    assert cube.total() == sum(r[-1] for r in rows)


@given(rows=rows_strategy)
@settings(max_examples=60, deadline=None)
def test_leaves_match_grouped_input(rows):
    cube = build_cube(rows, _schema())
    grouped = {}
    for row in rows:
        grouped[row[:-1]] = grouped.get(row[:-1], 0) + row[-1]
    assert dict(cube.leaves()) == grouped


@given(rows=rows_strategy, coords=coords_strategy)
@settings(max_examples=60, deadline=None)
def test_coalescing_never_changes_answers(rows, coords):
    schema = _schema()
    vector = [ALL if c is None else c for c in coords]
    on = DwarfBuilder(schema, coalesce=True).build(rows)
    off = DwarfBuilder(schema, coalesce=False).build(rows)
    assert on.value(vector) == off.value(vector)


@given(rows=rows_strategy, split=st.integers(min_value=0, max_value=40))
@settings(max_examples=60, deadline=None)
def test_merge_of_split_equals_whole(rows, split):
    schema = _schema()
    split = min(split, len(rows))
    if split == 0 or split == len(rows):
        return
    merged = merge_cubes(
        build_cube(rows[:split], schema), build_cube(rows[split:], schema)
    )
    whole = build_cube(rows, schema)
    assert sorted(merged.leaves()) == sorted(whole.leaves())
    assert merged.total() == whole.total()


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_every_node_closed_and_counts_consistent(rows):
    cube = build_cube(rows, _schema())
    from repro.dwarf.traversal import iter_nodes

    nodes = list(iter_nodes(cube.root))
    assert all(n.is_closed for n in nodes)
    assert cube.stats.node_count == len(nodes)
    assert cube.stats.all_cell_count == len(nodes)
