"""Hierarchical DWARF extension: rollup and drilldown (paper §6, [11])."""

import pytest

from repro.core.errors import QueryError, SchemaError
from repro.core.schema import CubeSchema
from repro.dwarf.builder import build_cube
from repro.dwarf.hierarchy import DimensionHierarchy, drilldown, rollup


@pytest.fixture
def station_hierarchy():
    return DimensionHierarchy(
        "station",
        [
            ("district", {
                "Fenian St": "D2", "Portobello": "D8",
                "Patrick St": "Cork-C", "Rue Cler": "7e",
            }),
            ("city", {"D2": "Dublin", "D8": "Dublin", "Cork-C": "Cork", "7e": "Paris"}),
        ],
    )


@pytest.fixture
def station_cube():
    schema = CubeSchema("bikes", ["day", "station"])
    rows = [
        ("mon", "Fenian St", 3),
        ("mon", "Portobello", 5),
        ("mon", "Patrick St", 2),
        ("tue", "Fenian St", 7),
        ("tue", "Rue Cler", 1),
    ]
    return build_cube(rows, schema)


class TestDimensionHierarchy:
    def test_levels(self, station_hierarchy):
        assert station_hierarchy.levels == ("station", "district", "city")

    def test_ancestor(self, station_hierarchy):
        assert station_hierarchy.ancestor("Fenian St", "district") == "D2"
        assert station_hierarchy.ancestor("Fenian St", "city") == "Dublin"
        assert station_hierarchy.ancestor("Fenian St", "station") == "Fenian St"

    def test_unknown_level(self, station_hierarchy):
        with pytest.raises(QueryError, match="unknown hierarchy level"):
            station_hierarchy.ancestor("Fenian St", "continent")

    def test_unmapped_member(self, station_hierarchy):
        with pytest.raises(QueryError, match="no parent"):
            station_hierarchy.ancestor("Nowhere", "city")

    def test_children(self, station_hierarchy):
        assert set(station_hierarchy.children("Dublin", "city")) == {
            "Fenian St", "Portobello",
        }
        assert station_hierarchy.children("D2", "district") == ("Fenian St",)

    def test_parent_level(self, station_hierarchy):
        assert station_hierarchy.parent_level("station") == "district"
        assert station_hierarchy.parent_level("city") is None

    def test_needs_at_least_one_parent_level(self):
        with pytest.raises(SchemaError):
            DimensionHierarchy("x", [])

    def test_duplicate_level_rejected(self):
        with pytest.raises(SchemaError):
            DimensionHierarchy("x", [("x", {})])


class TestRollup:
    def test_rollup_to_district(self, station_cube, station_hierarchy):
        rolled = rollup(station_cube, "station", station_hierarchy, "district")
        assert rolled.value(["mon", "D2"]) == 3
        assert rolled.value(["tue", "D2"]) == 7
        assert rolled.total() == station_cube.total()

    def test_rollup_to_city_groups(self, station_cube, station_hierarchy):
        rolled = rollup(station_cube, "station", station_hierarchy, "city")
        assert rolled.value(["mon", "Dublin"]) == 8
        assert rolled.value(["tue", "Paris"]) == 1
        assert rolled.schema.dimension_names == ("day", "city")

    def test_rollup_preserves_other_dimensions(self, station_cube, station_hierarchy):
        rolled = rollup(station_cube, "station", station_hierarchy, "city")
        assert set(rolled.members("day")) == {"mon", "tue"}

    def test_rollup_wrong_dimension(self, station_cube, station_hierarchy):
        with pytest.raises(QueryError):
            rollup(station_cube, "day", station_hierarchy, "city")


class TestDrilldown:
    def test_drilldown_selects_group_members(self, station_cube, station_hierarchy):
        sub = drilldown(station_cube, "station", station_hierarchy, "city", "Dublin")
        assert sorted(sub.members("station")) == ["Fenian St", "Portobello"]
        assert sub.total() == 15

    def test_drilldown_unknown_group(self, station_cube, station_hierarchy):
        with pytest.raises(QueryError):
            drilldown(station_cube, "station", station_hierarchy, "city", "Atlantis")

    def test_rollup_then_drilldown_consistent(self, station_cube, station_hierarchy):
        rolled = rollup(station_cube, "station", station_hierarchy, "city")
        sub = drilldown(station_cube, "station", station_hierarchy, "city", "Dublin")
        assert rolled.value(city="Dublin") == sub.total()
