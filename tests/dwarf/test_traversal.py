"""BFS traversal: uniqueness, ordering and the lookup-table guard."""

from repro.dwarf.builder import build_cube
from repro.dwarf.traversal import breadth_first, iter_cells, iter_nodes


class TestUniqueness:
    def test_each_node_visited_once(self, sample_cube):
        nodes = list(iter_nodes(sample_cube.root))
        assert len(nodes) == len({id(n) for n in nodes})

    def test_each_cell_visited_once(self, sample_cube):
        cells = [v.cell for v in iter_cells(sample_cube.root)]
        assert len(cells) == len({id(c) for c in cells})

    def test_counts_match_stats(self, sample_cube):
        stats = sample_cube.stats
        assert len(list(iter_nodes(sample_cube.root))) == stats.node_count
        assert len(list(iter_cells(sample_cube.root))) == stats.cell_count


class TestOrdering:
    def test_bfs_levels_non_decreasing(self, sample_cube):
        levels = [n.level for n in iter_nodes(sample_cube.root)]
        assert levels == sorted(levels)

    def test_root_first(self, sample_cube):
        first = next(breadth_first(sample_cube.root))
        assert first.node is sample_cube.root
        assert first.cell is None

    def test_node_event_precedes_its_cells(self, sample_cube):
        seen_nodes = set()
        for visit in breadth_first(sample_cube.root):
            if visit.cell is None:
                seen_nodes.add(id(visit.node))
            else:
                assert id(visit.node) in seen_nodes

    def test_cells_within_node_in_key_order_then_all(self, sample_cube):
        by_node = {}
        for visit in iter_cells(sample_cube.root):
            by_node.setdefault(id(visit.node), []).append(visit.cell)
        for cells in by_node.values():
            assert cells[-1].is_all
            keys = [c.key for c in cells[:-1]]
            assert keys == sorted(keys, key=repr)


class TestSharedNodes:
    def test_shared_node_emitted_once(self, sample_schema):
        # single-country cube: root ALL shares the country sub-dwarf
        cube = build_cube([("IE", "D", "S", 1), ("IE", "C", "T", 2)], sample_schema)
        nodes = list(iter_nodes(cube.root))
        assert len(nodes) == len({id(n) for n in nodes})
        # root has 1 member cell + ALL sharing the same child node
        assert cube.root.all_cell.node is cube.root.cell("IE").node
