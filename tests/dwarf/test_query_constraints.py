"""Declarative select(): Member/In/Range/Each/All constraints."""

import pytest

from repro.core.errors import QueryError
from repro.core.schema import CubeSchema
from repro.dwarf.builder import build_cube
from repro.dwarf.query import All, Each, In, Member, Range, select, slice_cube


@pytest.fixture
def hour_cube():
    schema = CubeSchema("hours", ["day", "hour", "station"])
    rows = [
        ("mon", 8, "a", 1),
        ("mon", 9, "a", 2),
        ("mon", 9, "b", 4),
        ("tue", 8, "a", 8),
        ("tue", 17, "b", 16),
    ]
    return build_cube(rows, schema)


class TestMember:
    def test_slice_one_member(self, hour_cube):
        results = dict(select(hour_cube, day=Member("mon")))
        assert results == {("mon",): 7}

    def test_absent_member_yields_nothing(self, hour_cube):
        assert list(select(hour_cube, day=Member("sun"))) == []


class TestEach:
    def test_group_by_one_dimension(self, hour_cube):
        results = dict(select(hour_cube, day=Each()))
        assert results == {("mon",): 7, ("tue",): 24}

    def test_group_by_two_dimensions(self, hour_cube):
        results = dict(select(hour_cube, day=Each(), hour=Each()))
        assert results[("mon", 9)] == 6
        assert results[("tue", 17)] == 16
        assert len(results) == 4

    def test_coordinates_in_schema_order(self, hour_cube):
        # station before day in the spec, but coordinates come in schema order
        results = list(select(hour_cube, station=Each(), day=Member("mon")))
        for coords, _ in results:
            assert coords[0] == "mon"


class TestIn:
    def test_dice(self, hour_cube):
        results = dict(select(hour_cube, hour=In([8, 17]), day=Each()))
        assert results == {("mon", 8): 1, ("tue", 8): 8, ("tue", 17): 16}


class TestRange:
    def test_inclusive_range(self, hour_cube):
        results = dict(select(hour_cube, hour=Range(8, 9), day=Each()))
        assert results == {("mon", 8): 1, ("mon", 9): 6, ("tue", 8): 8}

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError, match="empty range"):
            Range(9, 8)

    def test_range_skips_incomparable_members(self):
        schema = CubeSchema("m", ["k"])
        cube = build_cube([(1, 1), ("x", 2), (5, 4)], schema)
        results = dict(select(cube, k=Range(0, 9)))
        assert results == {(1,): 1, (5,): 4}


class TestAll:
    def test_all_is_default(self, hour_cube):
        assert list(select(hour_cube)) == [((), 31)]

    def test_explicit_all_aggregates_away(self, hour_cube):
        results = dict(select(hour_cube, day=Each(), hour=All()))
        assert results == {("mon",): 7, ("tue",): 24}


class TestSliceCube:
    def test_slice_fixes_and_groups(self, hour_cube):
        results = dict(slice_cube(hour_cube, day="mon"))
        assert results == {("mon", 8, "a"): 1, ("mon", 9, "a"): 2, ("mon", 9, "b"): 4}


class TestValidation:
    def test_non_constraint_rejected(self, hour_cube):
        with pytest.raises(QueryError, match="must be a Constraint"):
            list(select(hour_cube, day="mon"))

    def test_mapping_and_kwargs_conflict(self, hour_cube):
        with pytest.raises(QueryError):
            list(select(hour_cube, {"day": Each()}, hour=Each()))

    def test_results_against_value_oracle(self, hour_cube):
        for coords, value in select(hour_cube, day=Each(), hour=Each(), station=Each()):
            assert hour_cube.value(list(coords)) == value
