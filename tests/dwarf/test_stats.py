"""Cube statistics: the node_count/cell_count scan of paper §4."""

import pytest

from repro.dwarf.builder import DwarfBuilder, build_cube
from repro.dwarf.stats import compute_stats, describe


class TestCounts:
    def test_counts_on_sample(self, sample_cube):
        stats = compute_stats(sample_cube)
        assert stats.node_count > 0
        assert stats.cell_count > stats.node_count  # >=1 cell + ALL per node
        assert stats.all_cell_count == stats.node_count  # every node closed

    def test_cells_per_level_sums_to_total(self, sample_cube):
        stats = sample_cube.stats
        assert sum(stats.cells_per_level.values()) == stats.cell_count

    def test_leaf_cells_at_bottom_level(self, sample_cube):
        stats = sample_cube.stats
        bottom = sample_cube.schema.n_dimensions - 1
        assert stats.cells_per_level[bottom] == stats.leaf_cell_count

    def test_shared_nodes_counted(self, sample_facts):
        coalesced = DwarfBuilder(sample_facts.schema, coalesce=True).build(sample_facts)
        assert compute_stats(coalesced).shared_node_count > 0

    def test_estimated_bytes_positive(self, sample_cube):
        assert sample_cube.stats.estimated_bytes > 0

    def test_empty_cube(self, sample_schema):
        cube = build_cube([], sample_schema)
        stats = compute_stats(cube)
        assert stats.node_count == 1  # the open, empty root
        assert stats.cell_count == 0


class TestDescribe:
    def test_cube(self, sample_cube):
        assert describe(sample_cube) == compute_stats(sample_cube)

    def test_stats_method_object(self):
        from repro.storage.btree import BTree

        tree = BTree()
        tree.insert(1, b"v")
        assert describe(tree) == tree.stats()

    def test_metrics_registry_renders_table(self):
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        registry.counter("widget_total", "widgets").inc(3)
        text = describe(registry)
        assert "widget_total" in text and "3" in text

    def test_tracer_and_merged_forest_render_tree(self):
        from repro.telemetry.trace import Tracer

        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        as_tracer = describe(tracer)
        as_forest = describe(tracer.merged())
        assert as_tracer == as_forest
        assert "outer" in as_tracer and "inner" in as_tracer

    def test_type_error_names_accepted_shapes(self):
        with pytest.raises(TypeError) as excinfo:
            describe(42)
        message = str(excinfo.value)
        for shape in ("DwarfCube", "Plan", "MetricsRegistry", "Tracer",
                      "stats()"):
            assert shape in message


class TestGrowth:
    def test_more_tuples_more_cells(self, sample_schema):
        small = build_cube([("A", "B", "C", 1)], sample_schema)
        rows = [("A", "B", f"s{i}", i) for i in range(20)]
        big = build_cube(rows, sample_schema)
        assert big.stats.cell_count > small.stats.cell_count
