"""Shared fixtures: small cubes, engines and bike-feed bundles."""

from __future__ import annotations

import pytest

from repro.core.schema import CubeSchema, Dimension
from repro.core.tuples import TupleSet
from repro.dwarf.builder import DwarfBuilder

#: The Fig. 1-style sample input used across the DWARF tests: three
#: dimensions (country, city, station) and an integer measure.
SAMPLE_ROWS = [
    ("France", "Paris", "Rue Cler", 7),
    ("Ireland", "Cork", "Patrick St", 2),
    ("Ireland", "Dublin", "Fenian St", 3),
    ("Ireland", "Dublin", "Portobello", 5),
]


@pytest.fixture
def sample_schema() -> CubeSchema:
    return CubeSchema(
        "bikes",
        [
            Dimension("country"),
            Dimension("city"),
            Dimension("station", dimension_table="Station"),
        ],
        measure="available_bikes",
    )


@pytest.fixture
def sample_facts(sample_schema) -> TupleSet:
    return TupleSet(sample_schema, SAMPLE_ROWS)


@pytest.fixture
def sample_cube(sample_facts):
    return DwarfBuilder(sample_facts.schema).build(sample_facts)


@pytest.fixture
def bike_bundle():
    """A small real bike-feed slice: documents, facts and cube."""
    from repro.dwarf.builder import build_cube
    from repro.smartcity.bikes import BikeFeedGenerator, bikes_pipeline

    documents = BikeFeedGenerator(n_stations=24).generate_documents(
        days=2, total_records=600
    )
    pipeline = bikes_pipeline()
    facts = pipeline.extract(documents)
    return documents, facts, build_cube(facts)


def brute_force_value(rows, coords):
    """Oracle: SUM over rows matching ``coords`` (None entries = ALL)."""
    total = None
    for row in rows:
        keys, measure = row[:-1], row[-1]
        if all(c is None or c == k for c, k in zip(coords, keys)):
            total = measure if total is None else total + measure
    return total
