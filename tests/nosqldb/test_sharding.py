"""Consistent-hash sharding: the ring, the sharded column family, and
the ``keyspace.shard-routing`` invariant rule.

The ring must be deterministic across processes (it defines a persistent
layout), reasonably balanced at small shard counts, and the sharded
column family must keep every read/write/scan/count answer identical to
the single-shard layout while holding the routing invariant the checker
enforces.
"""

import pytest

from repro.analysis.sstable_check import columnfamily_check
from repro.nosqldb.columnfamily import Column, ColumnFamily
from repro.nosqldb.sharding import (
    DEFAULT_VNODES,
    HashRing,
    key_token,
    resolve_shards,
)
from repro.nosqldb.types import parse_type


def make_family(n=60, shards=1) -> ColumnFamily:
    family = ColumnFamily(
        "cells",
        [
            Column("id", parse_type("int")),
            Column("label", parse_type("text")),
            Column("measure", parse_type("int")),
        ],
        primary_key="id",
        shards=shards,
    )
    for i in range(n):
        family.insert({"id": i, "label": f"m{i % 7}", "measure": i})
    return family


def rules_of(report):
    return {violation.rule for violation in report.violations}


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        keys = list(range(500)) + [f"k{i}" for i in range(100)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_tokens_are_stable_values(self):
        # Pinned digests: a change here silently remaps every stored key.
        assert key_token(0) == 4244678350166698388
        assert key_token("m") == 13585315778576241670
        assert key_token(1) != key_token("1")  # type-faithful encoding

    def test_single_shard_short_circuit(self):
        ring = HashRing(1)
        assert all(ring.shard_for(k) == 0 for k in range(50))

    def test_every_shard_gets_keys(self):
        ring = HashRing(4)
        spread = ring.spread(range(1000))
        assert set(spread) == {0, 1, 2, 3}
        assert sum(spread.values()) == 1000
        # Balance: vnodes keep the largest share well under a 2x skew.
        assert max(spread.values()) < 2 * (1000 / 4)
        assert min(spread.values()) > 0

    def test_type_faithful_routing(self):
        # 1 and "1" encode differently and may land on different shards;
        # both must route consistently with their own token.
        ring = HashRing(8)
        assert ring.shard_for(1) == ring.shard_for(1)
        assert ring.shard_for("1") == ring.shard_for("1")

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)
        assert HashRing(2).vnodes == DEFAULT_VNODES

    def test_resolve_shards(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards() == 1
        assert resolve_shards(4) == 4
        monkeypatch.setenv("REPRO_SHARDS", "8")
        assert resolve_shards() == 8
        assert resolve_shards(2) == 2  # explicit beats env
        monkeypatch.setenv("REPRO_SHARDS", "garbage")
        assert resolve_shards() == 1
        monkeypatch.setenv("REPRO_SHARDS", "-3")
        assert resolve_shards() == 1


class TestShardedColumnFamily:
    def test_reads_match_single_shard(self):
        single, sharded = make_family(shards=1), make_family(shards=4)
        for key in range(60):
            assert sharded.get(key) == single.get(key)
        assert sharded.get_many(list(range(0, 60, 7))) == single.get_many(
            list(range(0, 60, 7))
        )
        assert len(sharded) == len(single) == 60

    def test_scan_is_shard_chained_multiset(self):
        single, sharded = make_family(shards=1), make_family(shards=4)
        flat = lambda rows: sorted(tuple(sorted(r.items())) for r in rows)
        assert flat(sharded.scan()) == flat(single.scan())
        # scan() chains scan_shard(0..N-1) exactly.
        chained = [
            row
            for shard_id in range(sharded.shard_count)
            for row in sharded.scan_shard(shard_id)
        ]
        assert chained == list(sharded.scan())

    def test_count_shard_sums_to_len(self):
        sharded = make_family(shards=4)
        sharded.flush()
        assert sum(
            sharded.count_shard(i) for i in range(sharded.shard_count)
        ) == len(sharded)

    def test_writes_route_by_ring(self):
        sharded = make_family(shards=4)
        ring = sharded.ring
        for shard in sharded.shards:
            for key, _ in shard.memtable:
                assert ring.shard_for(key) == shard.shard_id

    def test_delete_and_overwrite_stay_routed(self):
        sharded = make_family(shards=4)
        sharded.flush()
        sharded.delete(3)
        sharded.insert({"id": 7, "label": "new", "measure": -1})
        assert sharded.get(3) is None
        assert sharded.get(7)["label"] == "new"
        assert len(sharded) == 59
        report = columnfamily_check(sharded)
        assert report.ok, "\n".join(report.format_lines())

    def test_single_shard_filenames_unchanged(self, tmp_path):
        family = ColumnFamily(
            "cells",
            [Column("id", parse_type("int"))],
            primary_key="id",
            data_dir=tmp_path,
            shards=1,
        )
        family.insert({"id": 1})
        family.flush()
        assert [p.name for p in sorted(tmp_path.glob("*.db"))] == ["cells-1-Data.db"]

    def test_sharded_filenames_carry_shard_id(self, tmp_path):
        family = ColumnFamily(
            "cells",
            [Column("id", parse_type("int"))],
            primary_key="id",
            data_dir=tmp_path,
            shards=2,
        )
        for i in range(20):
            family.insert({"id": i})
        family.flush()
        names = {p.name for p in tmp_path.glob("*.db")}
        assert names and all("-s" in name for name in names)


class TestShardRoutingInvariant:
    def test_clean_family_passes(self):
        report = columnfamily_check(make_family(shards=4))
        assert report.ok, "\n".join(report.format_lines())
        assert report.n_checks > 0

    def test_flushed_family_passes(self):
        family = make_family(shards=4)
        family.flush()
        assert columnfamily_check(family).ok

    def test_misrouted_row_flagged(self):
        family = make_family(shards=4)
        key = 1000
        wrong = next(
            shard
            for shard in family.shards
            if shard.shard_id != family.ring.shard_for(key)
        )
        wrong.memtable.put(key, family.encode_row({"id": key, "measure": 0}))
        wrong.n_live += 1  # keep the live counters consistent
        assert "keyspace.shard-routing" in rules_of(columnfamily_check(family))

    def test_double_hosted_row_flagged(self):
        family = make_family(shards=4)
        key = 5  # already live on its home shard
        wrong = next(
            shard
            for shard in family.shards
            if shard.shard_id != family.ring.shard_for(key)
        )
        wrong.memtable.put(key, family.encode_row({"id": key, "measure": 0}))
        report = columnfamily_check(family)
        assert "keyspace.shard-routing" in rules_of(report)
        assert any("double-count" in v.message for v in report.violations)

    def test_counter_drift_flagged(self):
        # A drifted per-shard counter inflates the family total, which
        # the live-count reconciliation rule compares against storage.
        family = make_family(shards=4)
        family.shards[0].n_live += 1
        assert "sstable.live-count" in rules_of(columnfamily_check(family))
