"""Property-based fuzzing of the CQL path.

Random rows are formatted as literal INSERT text, parsed, executed and
read back — the full text round trip must be lossless, including quote
escaping, negative numbers, unicode and set literals.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.nosqldb.engine import NoSQLEngine

text_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30
)
int_values = st.integers(min_value=-(2 ** 40), max_value=2 ** 40)
set_values = st.sets(st.integers(min_value=-1000, max_value=1000), max_size=8)


def _quote(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


@given(key=st.integers(min_value=0, max_value=10_000), text=text_values,
       number=int_values, flag=st.booleans(), members=set_values)
@settings(max_examples=120, deadline=None)
def test_literal_insert_round_trips(key, text, number, flag, members):
    engine = NoSQLEngine()
    session = engine.connect()
    session.execute("CREATE KEYSPACE ks")
    session.execute("USE ks")
    session.execute(
        "CREATE TABLE t (id int PRIMARY KEY, txt text, num int, "
        "flag boolean, members set<int>)"
    )
    set_literal = "{" + ", ".join(str(m) for m in sorted(members)) + "}"
    session.execute(
        f"INSERT INTO t (id, txt, num, flag, members) VALUES "
        f"({key}, {_quote(text)}, {number}, {'true' if flag else 'false'}, {set_literal})"
    )
    row = session.execute(f"SELECT * FROM t WHERE id = {key}").one()
    assert row["txt"] == text
    assert row["num"] == number
    assert row["flag"] is flag
    assert row["members"] == (members if members else None) or not members


@given(key=st.integers(min_value=0, max_value=100), text=text_values, number=int_values)
@settings(max_examples=80, deadline=None)
def test_prepared_and_literal_agree(key, text, number):
    engine = NoSQLEngine()
    session = engine.connect()
    session.execute("CREATE KEYSPACE ks")
    session.execute("USE ks")
    session.execute("CREATE TABLE t (id int PRIMARY KEY, txt text, num int)")
    prepared = session.prepare("INSERT INTO t (id, txt, num) VALUES (?, ?, ?)")
    session.execute_batch([(prepared, (key, text, number))])
    via_plan = session.execute("SELECT * FROM t WHERE id = ?", (key,)).one()
    session.execute(
        f"INSERT INTO t (id, txt, num) VALUES ({key + 1000}, {_quote(text)}, {number})"
    )
    via_text = session.execute("SELECT * FROM t WHERE id = ?", (key + 1000,)).one()
    assert via_plan["txt"] == via_text["txt"] == text
    assert via_plan["num"] == via_text["num"] == number
