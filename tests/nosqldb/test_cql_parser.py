"""CQL lexer and parser."""

import pytest

from repro.nosqldb.cql import ast
from repro.nosqldb.cql.lexer import tokenize, unquote_string
from repro.nosqldb.cql.parser import parse
from repro.nosqldb.errors import CQLSyntaxError


class TestLexer:
    def test_token_kinds(self):
        kinds = [t.kind for t in tokenize("SELECT * FROM t WHERE id = 3")]
        assert kinds == ["IDENT", "OP", "IDENT", "IDENT", "IDENT", "IDENT", "OP", "NUMBER", "END"]

    def test_string_with_escaped_quote(self):
        token = tokenize("'O''Connell St'")[0]
        assert unquote_string(token.text) == "O'Connell St"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n1")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "1"]

    def test_bad_character(self):
        with pytest.raises(CQLSyntaxError):
            tokenize("SELECT @")

    def test_numbers(self):
        assert tokenize("-5")[0].text == "-5"
        assert tokenize("3.25")[0].kind == "NUMBER"


class TestCreateStatements:
    def test_create_keyspace(self):
        stmt = parse("CREATE KEYSPACE dwarf_warehouse")
        assert isinstance(stmt, ast.CreateKeyspace)
        assert stmt.name == "dwarf_warehouse"
        assert not stmt.if_not_exists

    def test_create_keyspace_if_not_exists(self):
        stmt = parse("CREATE KEYSPACE IF NOT EXISTS k WITH DURABLE_WRITES = false")
        assert stmt.if_not_exists
        assert stmt.durable_writes is False

    def test_create_table_with_pk_clause(self):
        stmt = parse(
            "CREATE TABLE dwarf_cell (id int, key text, leaf boolean, PRIMARY KEY (id))"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.primary_key == "id"
        assert stmt.columns == [("id", "int"), ("key", "text"), ("leaf", "boolean")]

    def test_create_table_inline_pk(self):
        stmt = parse("CREATE TABLE t (id int PRIMARY KEY, x set<int>)")
        assert stmt.primary_key == "id"
        assert stmt.columns[1] == ("x", "set<int>")

    def test_create_table_without_pk_rejected(self):
        with pytest.raises(CQLSyntaxError):
            parse("CREATE TABLE t (id int)")

    def test_create_index(self):
        stmt = parse("CREATE INDEX my_idx ON cells (parentNodeId)")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.name == "my_idx"
        assert stmt.column == "parentNodeId"

    def test_create_index_anonymous(self):
        stmt = parse("CREATE INDEX ON cells (x)")
        assert stmt.name is None

    def test_create_index_if_not_exists(self):
        stmt = parse("CREATE INDEX IF NOT EXISTS ON cells (x)")
        assert stmt.if_not_exists


class TestInsert:
    def test_basic_insert(self):
        stmt = parse("INSERT INTO ks.cells (id, key) VALUES (3, 'Fenian St')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.ref.keyspace == "ks"
        assert stmt.columns == ["id", "key"]
        assert stmt.values == [3, "Fenian St"]

    def test_fig3_insert_parses(self):
        stmt = parse(
            "INSERT INTO DWARF_CELL (id,key,measure,parentNode,"
            "pointerNode,leaf, schema_id, dimension_table_name) "
            "VALUES (3,'Fenian St', 3,3,null,true,1,'Station');"
        )
        assert stmt.values == [3, "Fenian St", 3, 3, None, True, 1, "Station"]

    def test_set_literal(self):
        stmt = parse("INSERT INTO t (id, kids) VALUES (1, {4, 5, 6})")
        assert isinstance(stmt.values[1], ast.SetLiteral)
        assert stmt.values[1].items == (4, 5, 6)

    def test_empty_set_literal(self):
        stmt = parse("INSERT INTO t (id, kids) VALUES (1, {})")
        assert stmt.values[1].items == ()

    def test_placeholders_numbered_in_order(self):
        stmt = parse("INSERT INTO t (a, b, c) VALUES (?, 5, ?)")
        assert stmt.values[0].index == 0
        assert stmt.values[2].index == 1

    def test_arity_mismatch(self):
        with pytest.raises(CQLSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.columns == []
        assert not stmt.count

    def test_column_list(self):
        stmt = parse("SELECT a, b FROM t")
        assert stmt.columns == ["a", "b"]

    def test_count(self):
        assert parse("SELECT COUNT(*) FROM t").count

    def test_where_conjunction(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 AND b >= 'x' ALLOW FILTERING")
        assert [(c.column, c.op) for c in stmt.where] == [("a", "="), ("b", ">=")]
        assert stmt.allow_filtering

    def test_where_in(self):
        stmt = parse("SELECT * FROM t WHERE id IN (1, 2, 3)")
        assert stmt.where[0].op == "IN"
        assert stmt.where[0].value == [1, 2, 3]

    def test_limit(self):
        assert parse("SELECT * FROM t LIMIT 10").limit == 10


class TestOtherStatements:
    def test_update(self):
        stmt = parse("UPDATE t SET size_as_mb = 9 WHERE id = 1")
        assert isinstance(stmt, ast.Update)
        assert stmt.assignments == [("size_as_mb", 9)]

    def test_update_requires_where(self):
        with pytest.raises(CQLSyntaxError):
            parse("UPDATE t SET a = 1")

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE id = 4")
        assert isinstance(stmt, ast.Delete)

    def test_truncate(self):
        assert isinstance(parse("TRUNCATE ks.t"), ast.Truncate)

    def test_drop_table_and_keyspace(self):
        assert isinstance(parse("DROP TABLE t"), ast.DropTable)
        assert isinstance(parse("DROP KEYSPACE k"), ast.DropKeyspace)

    def test_use(self):
        assert parse("USE dwarf_warehouse").name == "dwarf_warehouse"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CQLSyntaxError, match="trailing"):
            parse("USE k extra")

    def test_unknown_statement(self):
        with pytest.raises(CQLSyntaxError):
            parse("GRANT ALL")

    def test_keywords_case_insensitive(self):
        stmt = parse("select * from t where id = 1")
        assert isinstance(stmt, ast.Select)
