"""CQL type system: validation, codecs and the type parser."""

import pytest

from repro.nosqldb.errors import InvalidRequest
from repro.nosqldb.types import (
    BooleanType,
    DoubleType,
    IntType,
    SetType,
    TextType,
    parse_type,
)


class TestIntType:
    def test_round_trip(self):
        t = IntType()
        assert t.decode(t.encode(-12345), 0)[0] == -12345

    def test_rejects_bool(self):
        with pytest.raises(InvalidRequest):
            IntType().validate(True)

    def test_rejects_str(self):
        with pytest.raises(InvalidRequest):
            IntType().validate("5")

    def test_validate_encode_fast_path(self):
        t = IntType()
        assert t.validate_encode(7) == t.encode(7)
        with pytest.raises(InvalidRequest):
            t.validate_encode("x")
        with pytest.raises(InvalidRequest):
            t.validate_encode(True)  # bool is not an int here


class TestTextType:
    def test_round_trip(self):
        t = TextType()
        assert t.decode(t.encode("Fenian St"), 0)[0] == "Fenian St"

    def test_rejects_int(self):
        with pytest.raises(InvalidRequest):
            TextType().validate(5)


class TestBooleanType:
    def test_round_trip(self):
        t = BooleanType()
        assert t.decode(t.encode(True), 0)[0] is True
        assert t.decode(t.encode(False), 0)[0] is False

    def test_rejects_int(self):
        with pytest.raises(InvalidRequest):
            BooleanType().validate(1)

    def test_validate_encode(self):
        assert BooleanType().validate_encode(True) == b"\x01"
        with pytest.raises(InvalidRequest):
            BooleanType().validate_encode(1)


class TestDoubleType:
    def test_round_trip(self):
        t = DoubleType()
        assert t.decode(t.encode(2.5), 0)[0] == 2.5

    def test_accepts_int(self):
        t = DoubleType()
        assert t.decode(t.encode(3), 0)[0] == 3.0


class TestSetType:
    def test_round_trip(self):
        t = SetType(IntType())
        value = {5, 1, 99}
        assert t.decode(t.encode(value), 0)[0] == value

    def test_empty_set(self):
        t = SetType(IntType())
        assert t.decode(t.encode(set()), 0)[0] == set()

    def test_encoding_sorted_and_deterministic(self):
        t = SetType(IntType())
        assert t.encode({3, 1, 2}) == t.encode({2, 3, 1})

    def test_validates_elements(self):
        with pytest.raises(InvalidRequest):
            SetType(IntType()).validate({1, "x"})

    def test_rejects_list(self):
        with pytest.raises(InvalidRequest):
            SetType(IntType()).validate([1, 2])


class TestParseType:
    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("int", IntType),
            ("INT", IntType),
            ("text", TextType),
            ("boolean", BooleanType),
            ("double", DoubleType),
        ],
    )
    def test_scalars(self, spec, cls):
        assert isinstance(parse_type(spec), cls)

    def test_set_of_int(self):
        t = parse_type("set<int>")
        assert isinstance(t, SetType)
        assert isinstance(t.element, IntType)

    def test_nested_set_rejected(self):
        with pytest.raises(InvalidRequest):
            parse_type("set<set<int>>")

    def test_unknown_type(self):
        with pytest.raises(InvalidRequest, match="unknown CQL type"):
            parse_type("map<int,int>")
