"""Keyspace and engine management."""

import pytest

from repro.nosqldb.columnfamily import Column
from repro.nosqldb.engine import NoSQLEngine
from repro.nosqldb.errors import AlreadyExists, InvalidRequest
from repro.nosqldb.types import parse_type


def columns():
    return [Column("id", parse_type("int")), Column("v", parse_type("text"))]


class TestEngine:
    def test_create_and_get(self):
        engine = NoSQLEngine()
        engine.create_keyspace("ks")
        assert engine.has_keyspace("ks")
        assert engine.keyspace("KS").name == "ks"  # case-insensitive

    def test_duplicate_rejected(self):
        engine = NoSQLEngine()
        engine.create_keyspace("ks")
        with pytest.raises(AlreadyExists):
            engine.create_keyspace("ks")
        engine.create_keyspace("ks", if_not_exists=True)  # no-op

    def test_drop(self):
        engine = NoSQLEngine()
        engine.create_keyspace("ks")
        engine.drop_keyspace("ks")
        assert not engine.has_keyspace("ks")
        with pytest.raises(InvalidRequest):
            engine.drop_keyspace("ks")

    def test_keyspaces_listing(self):
        engine = NoSQLEngine()
        engine.create_keyspace("a")
        engine.create_keyspace("b")
        assert {k.name for k in engine.keyspaces} == {"a", "b"}

    def test_connect_binds_keyspace(self):
        engine = NoSQLEngine()
        engine.create_keyspace("ks")
        session = engine.connect("ks")
        assert session.keyspace == "ks"


class TestKeyspace:
    def test_create_table_and_lookup(self):
        engine = NoSQLEngine()
        ks = engine.create_keyspace("ks")
        ks.create_table("t", columns(), "id")
        assert ks.has_table("T")
        assert ks.table("t").primary_key == "id"

    def test_duplicate_table(self):
        ks = NoSQLEngine().create_keyspace("ks")
        ks.create_table("t", columns(), "id")
        with pytest.raises(AlreadyExists):
            ks.create_table("t", columns(), "id")
        same = ks.create_table("t", columns(), "id", if_not_exists=True)
        assert same is ks.table("t")

    def test_drop_table(self):
        ks = NoSQLEngine().create_keyspace("ks")
        ks.create_table("t", columns(), "id")
        ks.drop_table("t")
        with pytest.raises(InvalidRequest):
            ks.table("t")

    def test_size_sums_tables(self):
        ks = NoSQLEngine().create_keyspace("ks")
        a = ks.create_table("a", columns(), "id")
        b = ks.create_table("b", columns(), "id")
        for i in range(50):
            a.insert({"id": i, "v": "x" * 50})
            b.insert({"id": i, "v": "y" * 50})
        assert ks.size_bytes == a.size_bytes + b.size_bytes

    def test_durable_writes_off_disables_commit_log(self):
        ks = NoSQLEngine().create_keyspace("ks", durable_writes=False)
        t = ks.create_table("t", columns(), "id")
        t.insert({"id": 1, "v": "x"})
        assert ks.commit_log_bytes == 0

    def test_commit_log_shared_across_tables(self):
        ks = NoSQLEngine().create_keyspace("ks")
        a = ks.create_table("a", columns(), "id")
        b = ks.create_table("b", columns(), "id")
        a.insert({"id": 1, "v": "x"})
        size_after_a = ks.commit_log_bytes
        b.insert({"id": 1, "v": "x"})
        assert ks.commit_log_bytes > size_after_a


class TestSessionUse:
    def test_create_keyspace_with_durable_writes_cql(self):
        engine = NoSQLEngine()
        session = engine.connect()
        session.execute("CREATE KEYSPACE ks WITH DURABLE_WRITES = false")
        assert engine.keyspace("ks").durable_writes is False

    def test_qualified_table_without_use(self):
        engine = NoSQLEngine()
        session = engine.connect()
        session.execute("CREATE KEYSPACE ks")
        session.execute("CREATE TABLE ks.t (id int PRIMARY KEY, v text)")
        session.execute("INSERT INTO ks.t (id, v) VALUES (1, 'x')")
        assert session.execute("SELECT * FROM ks.t WHERE id = 1").one()["v"] == "x"

    def test_table_uncompressed_option(self):
        engine = NoSQLEngine()
        session = engine.connect()
        session.execute("CREATE KEYSPACE ks")
        session.execute("CREATE TABLE ks.t (id int PRIMARY KEY, v text) WITH COMPRESSION = false")
        assert engine.keyspace("ks").table("t").compression is False
