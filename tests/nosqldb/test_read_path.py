"""Read-path caches: multi-get equivalence, strict invalidation, stats.

The row/block caches (docs/read_path.md) must be invisible to callers:
``get_many`` agrees with per-key ``get`` under any mutation history, and
every mutation path — update, delete, flush, compaction, truncate, crash
recovery — leaves the caches agreeing with storage.  The invalidation
tests run with the invariant checkers armed (REPRO_CHECK=1) so the
``row-cache-stale`` and ``live-count`` rules fire inside the mutation
hooks, and additionally assert via ``columnfamily_check`` directly.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.sstable_check import columnfamily_check
from repro.nosqldb.columnfamily import Column, ColumnFamily
from repro.nosqldb.engine import NoSQLEngine
from repro.nosqldb.keyspace import Keyspace
from repro.nosqldb.types import parse_type


def make_cf(**kwargs) -> ColumnFamily:
    return ColumnFamily(
        "t",
        [Column("id", parse_type("int")), Column("m", parse_type("int"))],
        "id",
        **kwargs,
    )


def assert_clean(cf: ColumnFamily) -> None:
    report = columnfamily_check(cf)
    assert report.ok, report.format_lines()


# ----------------------------------------------------------------------
# property: get_many == per-key get, whatever the history
# ----------------------------------------------------------------------
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "flush", "seal", "read", "read_many"]),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=-1000, max_value=1000),
    ),
    max_size=120,
)

read_keys_strategy = st.lists(
    st.integers(min_value=-2, max_value=32), max_size=40
)


@given(ops=ops_strategy, keys=read_keys_strategy)
@settings(max_examples=80, deadline=None)
def test_get_many_matches_pointwise_get(ops, keys):
    """Duplicates, misses and cache state never change the answers."""
    cf = make_cf()
    reference = {}
    for op, key, value in ops:
        if op == "insert":
            cf.insert({"id": key, "m": value})
            reference[key] = value
        elif op == "delete":
            cf.delete(key)
            reference.pop(key, None)
        elif op == "flush":
            cf.flush()
        elif op == "seal":
            cf.seal_memtable()
        elif op == "read":  # interleaved reads populate the caches
            cf.get(key)
        else:
            cf.get_many([key, key + 1])
    batched = cf.get_many(keys)
    assert batched == [cf.get(key) for key in keys]
    for row, key in zip(batched, keys):
        if key in reference:
            assert row is not None and row["m"] == reference[key]
        else:
            assert row is None
    assert_clean(cf)


def test_get_many_preserves_order_and_duplicates():
    cf = make_cf()
    for i in range(6):
        cf.insert({"id": i, "m": i * 10})
    cf.flush()
    rows = cf.get_many([5, 0, 5, 99, 2])
    assert [r and r["m"] for r in rows] == [50, 0, 50, None, 20]


def test_get_many_spans_memtable_pending_and_sstables():
    cf = make_cf()
    cf.insert({"id": 1, "m": 1})
    cf.flush()
    cf.insert({"id": 2, "m": 2})
    cf.seal_memtable()
    cf.insert({"id": 3, "m": 3})
    cf.insert({"id": 1, "m": 100})  # shadows the SSTable version
    rows = cf.get_many([1, 2, 3])
    assert [r["m"] for r in rows] == [100, 2, 3]
    assert cf._pending, "multi-get must not force materialisation"


# ----------------------------------------------------------------------
# strict invalidation under every mutation path (checkers armed)
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _armed(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")


class TestInvalidation:
    def test_update_invalidates_cached_row(self):
        cf = make_cf()
        cf.insert({"id": 1, "m": 1})
        cf.flush()
        assert cf.get(1)["m"] == 1  # row now cached
        cf.update(1, {"m": 2})
        assert cf.get(1)["m"] == 2
        assert_clean(cf)

    def test_delete_invalidates_cached_row(self):
        cf = make_cf()
        cf.insert({"id": 1, "m": 1})
        assert cf.get(1) is not None
        cf.delete(1)
        assert cf.get(1) is None
        assert_clean(cf)

    def test_insert_invalidates_cached_negative(self):
        cf = make_cf()
        assert cf.get(7) is None  # negative result now cached
        cf.insert({"id": 7, "m": 7})
        assert cf.get(7)["m"] == 7
        assert_clean(cf)

    def test_flush_keeps_cache_agreeing(self):
        cf = make_cf()
        for i in range(10):
            cf.insert({"id": i, "m": i})
        assert cf.get_many(list(range(10))) is not None
        cf.flush()
        assert [r["m"] for r in cf.get_many(list(range(10)))] == list(range(10))
        assert_clean(cf)

    def test_compaction_keeps_cache_agreeing(self):
        cf = make_cf()
        for round_number in range(6):  # several flushes force a compaction
            cf.insert({"id": round_number, "m": round_number})
            cf.get_many(list(range(round_number + 1)))
            cf.flush()
        assert [r["m"] for r in cf.get_many(list(range(6)))] == list(range(6))
        assert_clean(cf)

    def test_truncate_clears_caches(self):
        cf = make_cf()
        for i in range(5):
            cf.insert({"id": i, "m": i})
        cf.flush()
        cf.get_many(list(range(5)))
        cf.truncate()
        assert cf.get_many(list(range(5))) == [None] * 5
        assert len(cf) == 0
        assert_clean(cf)

    def test_crash_recovery_drops_and_repopulates(self):
        keyspace = Keyspace("ks", durable_writes=True)
        table = keyspace.create_table(
            "t",
            [Column("id", parse_type("int")), Column("m", parse_type("int"))],
            "id",
        )
        for i in range(8):
            table.insert({"id": i, "m": i})
        table.get_many(list(range(8)))  # warm the row cache
        table.delete(3)
        keyspace.simulate_crash()
        assert table._row_cache.stats().entries == 0
        keyspace.replay_commit_log()
        rows = table.get_many(list(range(8)))
        assert [r and r["m"] for r in rows] == [0, 1, 2, None, 4, 5, 6, 7]
        assert len(table) == 7  # recounted lazily after recovery
        assert_clean(table)


# ----------------------------------------------------------------------
# live-row counter
# ----------------------------------------------------------------------
class TestLiveCount:
    def test_len_without_scans(self):
        cf = make_cf()
        for i in range(10):
            cf.insert({"id": i, "m": i})
        cf.insert({"id": 3, "m": 33})  # overwrite: no count change
        cf.delete(4)
        cf.delete(4)  # double delete: single decrement
        cf.flush()
        cf.delete(99)  # deleting a miss: no change
        assert len(cf) == 9
        assert_clean(cf)

    def test_len_with_indexes(self):
        cf = make_cf()
        cf.create_index("m_idx", "m")
        for i in range(6):
            cf.insert({"id": i % 3, "m": i})
        cf.delete(0)
        assert len(cf) == 2
        assert_clean(cf)


# ----------------------------------------------------------------------
# cache stats
# ----------------------------------------------------------------------
class TestCacheStats:
    def test_row_cache_counts_hits(self):
        cf = make_cf()
        cf.insert({"id": 1, "m": 1})
        cf.flush()
        cf.get(1)
        before = cf.stats().row_cache.hits
        cf.get(1)
        cf.get(1)
        assert cf.stats().row_cache.hits == before + 2

    def test_block_cache_hit_on_repeated_disk_read(self):
        cf = make_cf(row_cache_bytes=0)  # isolate the block cache
        for i in range(50):
            cf.insert({"id": i, "m": i})
        cf.flush()
        cf.get(7)
        before = cf.stats().block_cache
        cf.get(7)
        after = cf.stats().block_cache
        assert after.hits == before.hits + 1
        assert after.entries >= 1

    def test_zero_budgets_disable_without_changing_answers(self):
        cf = make_cf(block_cache_bytes=0, row_cache_bytes=0)
        for i in range(20):
            cf.insert({"id": i, "m": i})
        cf.flush()
        assert [r["m"] for r in cf.get_many(list(range(20)))] == list(range(20))
        stats = cf.stats()
        assert stats.row_cache.capacity_bytes == 0
        assert stats.block_cache.capacity_bytes == 0
        assert stats.row_cache.entries == 0
        assert stats.block_cache.entries == 0
        assert_clean(cf)

    def test_row_cache_eviction_under_tiny_budget(self):
        cf = make_cf(row_cache_bytes=256)
        for i in range(50):
            cf.insert({"id": i, "m": i})
        cf.flush()
        assert [r["m"] for r in cf.get_many(list(range(50)))] == list(range(50))
        stats = cf.stats().row_cache
        assert stats.evictions > 0
        assert stats.used_bytes <= 256
        assert_clean(cf)


# ----------------------------------------------------------------------
# session-level batched execution
# ----------------------------------------------------------------------
class TestExecuteMany:
    @pytest.fixture
    def session(self):
        s = NoSQLEngine().connect()
        s.execute("CREATE KEYSPACE ks")
        s.execute("USE ks")
        s.execute("CREATE TABLE cells (id int PRIMARY KEY, k text, m int)")
        insert = s.prepare("INSERT INTO cells (id, k, m) VALUES (?, ?, ?)")
        s.execute_batch((insert, (i, f"k{i}", i * 2)) for i in range(30))
        return s

    def test_point_select_matches_per_row_execution(self, session):
        prepared = session.prepare("SELECT k, m FROM cells WHERE id = ?")
        params = [(i,) for i in (5, 1, 5, 99, 28)]
        batched = session.execute_many(prepared, params)
        pointwise = [session.execute_prepared(prepared, p) for p in params]
        assert [r.rows for r in batched] == [r.rows for r in pointwise]
        from repro.query import UNPLANNABLE

        assert session._fused_plan_for(prepared) is not UNPLANNABLE  # fast path engaged

    def test_cql_string_accepted(self, session):
        results = session.execute_many(
            "SELECT m FROM cells WHERE id = ?", [(2,), (3,)]
        )
        assert [r.one()["m"] for r in results] == [4, 6]

    def test_non_point_shape_falls_back(self, session):
        prepared = session.prepare("SELECT count(*) FROM cells")
        results = session.execute_many(prepared, [(), ()])
        from repro.query import UNPLANNABLE

        assert session._fused_plan_for(prepared) is UNPLANNABLE
        assert [r.one()["count"] for r in results] == [30, 30]

    def test_in_clause_uses_multi_get(self, session):
        rows = session.execute("SELECT id, m FROM cells WHERE id IN (3, 1, 7)").rows
        assert sorted(r["id"] for r in rows) == [1, 3, 7]


class TestSelectManySQL:
    @pytest.fixture
    def session(self):
        from repro.sqldb.engine import SQLEngine

        s = SQLEngine().connect()
        s.execute("CREATE DATABASE db")
        s.execute("USE db")
        s.execute("CREATE TABLE cells (id INT PRIMARY KEY, m INT)")
        insert = s.prepare("INSERT INTO cells (id, m) VALUES (?, ?)")
        s.execute_many(insert, [(i, i * 3) for i in range(20)])
        return s

    def test_point_select_matches_per_row_execution(self, session):
        prepared = session.prepare("SELECT m FROM cells WHERE id = ?")
        params = [(4,), (0,), (4,), (77,)]
        batched = session.select_many(prepared, params)
        pointwise = [session.execute_prepared(prepared, p) for p in params]
        assert [r.rows for r in batched] == [r.rows for r in pointwise]
        from repro.query import UNPLANNABLE

        assert session._fused_plan_for(prepared) is not UNPLANNABLE
