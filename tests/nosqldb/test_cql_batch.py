"""CQL logged batches: BEGIN BATCH ... APPLY BATCH."""

import pytest

from repro.nosqldb.engine import NoSQLEngine
from repro.nosqldb.errors import CQLSyntaxError
from repro.nosqldb.cql import ast
from repro.nosqldb.cql.parser import parse


@pytest.fixture
def session():
    s = NoSQLEngine().connect()
    s.execute("CREATE KEYSPACE ks")
    s.execute("USE ks")
    s.execute("CREATE TABLE t (id int PRIMARY KEY, v text, m int)")
    return s


class TestParsing:
    def test_batch_of_inserts(self):
        stmt = parse(
            "BEGIN BATCH "
            "INSERT INTO t (id, v) VALUES (1, 'a'); "
            "INSERT INTO t (id, v) VALUES (2, 'b'); "
            "APPLY BATCH"
        )
        assert isinstance(stmt, ast.Batch)
        assert len(stmt.statements) == 2

    def test_mixed_mutations(self):
        stmt = parse(
            "BEGIN BATCH "
            "INSERT INTO t (id, v) VALUES (1, 'a'); "
            "UPDATE t SET v = 'b' WHERE id = 1; "
            "DELETE FROM t WHERE id = 2; "
            "APPLY BATCH"
        )
        assert len(stmt.statements) == 3

    def test_empty_batch_rejected(self):
        with pytest.raises(CQLSyntaxError, match="empty batch"):
            parse("BEGIN BATCH APPLY BATCH")

    def test_select_in_batch_rejected(self):
        with pytest.raises(CQLSyntaxError):
            parse("BEGIN BATCH SELECT * FROM t; APPLY BATCH")

    def test_placeholders_numbered_across_batch(self):
        stmt = parse(
            "BEGIN BATCH "
            "INSERT INTO t (id, v) VALUES (?, ?); "
            "INSERT INTO t (id, v) VALUES (?, ?); "
            "APPLY BATCH"
        )
        indices = [v.index for s in stmt.statements for v in s.values]
        assert indices == [0, 1, 2, 3]


class TestExecution:
    def test_batch_applies_in_order(self, session):
        session.execute(
            "BEGIN BATCH "
            "INSERT INTO t (id, v, m) VALUES (1, 'first', 1); "
            "UPDATE t SET v = 'second' WHERE id = 1; "
            "INSERT INTO t (id, v, m) VALUES (2, 'x', 2); "
            "APPLY BATCH"
        )
        assert session.execute("SELECT v FROM t WHERE id = 1").one()["v"] == "second"
        assert session.execute("SELECT COUNT(*) FROM t").one()["count"] == 2

    def test_batch_with_params(self, session):
        session.execute(
            "BEGIN BATCH "
            "INSERT INTO t (id, v) VALUES (?, ?); "
            "INSERT INTO t (id, v) VALUES (?, ?); "
            "APPLY BATCH",
            (1, "a", 2, "b"),
        )
        assert session.execute("SELECT v FROM t WHERE id = 2").one()["v"] == "b"

    def test_batch_with_delete(self, session):
        session.execute("INSERT INTO t (id, v) VALUES (9, 'gone')")
        session.execute(
            "BEGIN BATCH DELETE FROM t WHERE id = 9; "
            "INSERT INTO t (id, v) VALUES (10, 'kept'); APPLY BATCH"
        )
        assert session.execute("SELECT * FROM t WHERE id = 9").one() is None
        assert session.execute("SELECT * FROM t WHERE id = 10").one() is not None

    def test_prepared_batch_reusable(self, session):
        prepared = session.prepare(
            "BEGIN BATCH INSERT INTO t (id, m) VALUES (?, ?); "
            "INSERT INTO t (id, m) VALUES (?, ?); APPLY BATCH"
        )
        session.execute_prepared(prepared, (1, 10, 2, 20))
        session.execute_prepared(prepared, (3, 30, 4, 40))
        assert session.execute("SELECT COUNT(*) FROM t").one()["count"] == 4
