"""Compiled (zero-parse) inserts must be byte-identical to per-row inserts.

``Session.compile_insert`` plans an INSERT once; ``execute_batch`` then
streams bound rows straight into the memtable.  These tests drive the
same rows through the classic per-statement path and the compiled path
on twin engines and compare the raw storage state: encoded memtable
rows, write clock, commit log records, and secondary index answers.
"""

import pytest

from repro.nosqldb.engine import NoSQLEngine
from repro.nosqldb.errors import InvalidRequest
from repro.nosqldb.session import CompiledInsert

_DDL = """
CREATE TABLE IF NOT EXISTS readings (
  id int PRIMARY KEY,
  station text,
  level int,
  ok boolean
)
"""

_INSERT = "INSERT INTO readings (id, station, level, ok) VALUES (?, ?, ?, ?)"

_ROWS = [
    (1, "north", 10, True),
    (2, "south", -3, False),
    (3, "north", 7, True),
    (4, None, 0, False),  # null value is skipped, not stored
    (5, "east", 99, True),
]


def _fresh_session(with_index=False):
    engine = NoSQLEngine()
    session = engine.connect()
    session.execute("CREATE KEYSPACE IF NOT EXISTS ks")
    session.execute("USE ks")
    session.execute(_DDL)
    if with_index:
        session.execute("CREATE INDEX IF NOT EXISTS ON readings (station)")
    return engine, session


def _table(engine):
    return engine.keyspace("ks").table("readings")


def _storage_state(engine):
    table = _table(engine)
    return dict(table._memtable._rows), table._write_clock


@pytest.mark.parametrize("with_index", [False, True])
def test_compiled_batch_matches_per_row_bytes(with_index):
    classic_engine, classic = _fresh_session(with_index)
    prepared = classic.prepare(_INSERT)
    for row in _ROWS:
        classic.execute_prepared(prepared, row)

    compiled_engine, compiled_session = _fresh_session(with_index)
    plan = compiled_session.compile_insert(_INSERT)
    assert isinstance(plan, CompiledInsert)
    assert plan.execute_batch(_ROWS) == len(_ROWS)

    classic_rows, classic_clock = _storage_state(classic_engine)
    compiled_rows, compiled_clock = _storage_state(compiled_engine)
    assert compiled_rows == classic_rows  # byte-for-byte encoded rows
    assert compiled_clock == classic_clock  # same timestamp sequence

    classic_log = list(classic_engine.keyspace("ks")._commit_log.records())
    compiled_log = list(compiled_engine.keyspace("ks")._commit_log.records())
    assert compiled_log == classic_log

    if with_index:
        for station in ("north", "south", "east"):
            assert sorted(_table(compiled_engine)._indexes["station"].lookup(station)) == \
                sorted(_table(classic_engine)._indexes["station"].lookup(station))


def test_compiled_single_execute_matches_insert():
    classic_engine, classic = _fresh_session()
    classic.execute(
        "INSERT INTO readings (id, station, level, ok) VALUES (9, 'w', 5, true)"
    )
    compiled_engine, compiled_session = _fresh_session()
    plan = compiled_session.compile_insert(_INSERT)
    plan.execute((9, "w", 5, True))
    assert _storage_state(compiled_engine) == _storage_state(classic_engine)


def test_compiled_insert_constant_values():
    # Mixed constants and binds in the compiled template.
    classic_engine, classic = _fresh_session()
    classic.execute("INSERT INTO readings (id, station, level) VALUES (1, 'fix', 3)")
    compiled_engine, compiled_session = _fresh_session()
    plan = compiled_session.compile_insert(
        "INSERT INTO readings (id, station, level) VALUES (?, 'fix', 3)"
    )
    plan.execute_batch([(1,)])
    assert _storage_state(compiled_engine) == _storage_state(classic_engine)


def test_rows_visible_through_cql_after_compiled_batch():
    engine, session = _fresh_session()
    session.compile_insert(_INSERT).execute_batch(_ROWS)
    rows = sorted(
        (r["id"], r["station"]) for r in session.execute("SELECT * FROM readings")
    )
    assert rows == [(1, "north"), (2, "south"), (3, "north"), (4, None), (5, "east")]


def test_compile_rejects_non_insert():
    _, session = _fresh_session()
    with pytest.raises(InvalidRequest):
        session.compile_insert("UPDATE readings SET level = ? WHERE id = ?")


def test_compiled_null_key_rejected():
    _, session = _fresh_session()
    plan = session.compile_insert(_INSERT)
    with pytest.raises(InvalidRequest):
        plan.execute_batch([(None, "x", 1, True)])
