"""SSTables: block building, point reads, scans, compaction, bloom."""

import pytest

from repro.nosqldb.sstable import BloomFilter, SSTable, compact


def make_items(n, prefix="row"):
    return [(i, f"{prefix}{i}".encode()) for i in range(n)]


class TestBuildAndRead:
    def test_point_reads(self):
        table = SSTable(make_items(500))
        assert table.get(0) == b"row0"
        assert table.get(499) == b"row499"
        assert table.get(777) is None

    def test_uncompressed_mode(self):
        table = SSTable(make_items(100), compressed=False)
        assert table.get(50) == b"row50"

    def test_scan_in_order(self):
        table = SSTable(make_items(300))
        assert [k for k, _ in table.items()] == list(range(300))

    def test_len(self):
        assert len(SSTable(make_items(42))) == 42

    def test_empty_table(self):
        table = SSTable([])
        assert table.get(1) is None
        assert list(table.items()) == []

    def test_string_keys(self):
        items = sorted((f"k{i:03d}", b"v") for i in range(50))
        table = SSTable(items)
        assert table.get("k025") == b"v"
        assert table.get("zzz") is None

    def test_key_before_first_block(self):
        table = SSTable([(10, b"v")])
        assert table.get(1) is None


class TestSize:
    def test_compression_reduces_size(self):
        items = [(i, b"A" * 200) for i in range(200)]
        compressed = SSTable(items, compressed=True)
        plain = SSTable(items, compressed=False)
        assert compressed.size_bytes < plain.size_bytes

    def test_size_positive_even_when_empty(self):
        assert SSTable([]).size_bytes > 0


class TestTombstones:
    def test_tombstoned_key_reads_none(self):
        table = SSTable(make_items(10), tombstones=frozenset({3}))
        assert table.is_deleted(3)
        assert table.get(3) is None


class TestCompact:
    def test_newest_wins(self):
        old = SSTable([(1, b"old"), (2, b"keep")])
        new = SSTable([(1, b"new")])
        merged = compact([old, new])
        assert merged.get(1) == b"new"
        assert merged.get(2) == b"keep"

    def test_tombstone_removes_row(self):
        old = SSTable([(1, b"v"), (2, b"w")])
        deleter = SSTable([], tombstones=frozenset({1}))
        merged = compact([old, deleter])
        assert merged.get(1) is None
        assert merged.get(2) == b"w"
        assert not merged.tombstones  # applied and discarded

    def test_reinsert_after_tombstone_survives(self):
        first = SSTable([(1, b"a")])
        second = SSTable([], tombstones=frozenset({1}))
        third = SSTable([(1, b"b")])
        merged = compact([first, second, third])
        assert merged.get(1) == b"b"

    def test_result_sorted(self):
        left = SSTable([(1, b"a"), (5, b"e")])
        right = SSTable([(3, b"c")])
        merged = compact([left, right])
        assert [k for k, _ in merged.items()] == [1, 3, 5]


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(1000)
        for key in range(1000):
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in range(1000))

    def test_mostly_rejects_absent(self):
        bloom = BloomFilter(1000)
        for key in range(1000):
            bloom.add(key)
        false_positives = sum(
            1 for key in range(10_000, 20_000) if bloom.might_contain(key)
        )
        assert false_positives < 500  # ~1% expected, allow slack

    def test_size_scales_with_keys(self):
        assert BloomFilter(10_000).size_bytes > BloomFilter(10).size_bytes
