"""Memtable semantics: puts, overwrites, tombstones, accounting."""

from repro.nosqldb.memtable import ENTRY_OVERHEAD, Memtable


class TestPutGet:
    def test_put_get(self):
        m = Memtable()
        m.put(1, b"row")
        assert m.get(1) == b"row"
        assert m.get(2) is None

    def test_overwrite_replaces(self):
        m = Memtable()
        m.put(1, b"a")
        m.put(1, b"bb")
        assert m.get(1) == b"bb"
        assert len(m) == 1

    def test_contains(self):
        m = Memtable()
        m.put("k", b"v")
        assert "k" in m and "x" not in m


class TestAccounting:
    def test_bytes_track_rows(self):
        m = Memtable()
        m.put(1, b"x" * 100)
        assert m.approximate_bytes == 100 + ENTRY_OVERHEAD

    def test_overwrite_adjusts_bytes(self):
        m = Memtable()
        m.put(1, b"x" * 100)
        m.put(1, b"x" * 40)
        assert m.approximate_bytes == 40 + ENTRY_OVERHEAD


class TestTombstones:
    def test_delete_marks_tombstone(self):
        m = Memtable()
        m.put(1, b"v")
        m.delete(1)
        assert m.get(1) is None
        assert m.is_deleted(1)
        assert 1 in m.tombstones

    def test_delete_unknown_key_still_tombstones(self):
        m = Memtable()
        m.delete(9)
        assert m.is_deleted(9)

    def test_put_clears_tombstone(self):
        m = Memtable()
        m.delete(1)
        m.put(1, b"v")
        assert not m.is_deleted(1)
        assert m.get(1) == b"v"


class TestSortedItems:
    def test_sorted_by_key(self):
        m = Memtable()
        for key in (5, 1, 3):
            m.put(key, str(key).encode())
        assert [k for k, _ in m.sorted_items()] == [1, 3, 5]
