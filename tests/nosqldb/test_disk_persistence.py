"""On-disk SSTables: data files written, read back, cleaned by compaction."""

import pytest

from repro.nosqldb.columnfamily import Column
from repro.nosqldb.engine import NoSQLEngine
from repro.nosqldb.types import parse_type


@pytest.fixture
def disk_table(tmp_path):
    engine = NoSQLEngine(data_dir=tmp_path)
    ks = engine.create_keyspace("ks")
    table = ks.create_table(
        "cells",
        [Column("id", parse_type("int")), Column("v", parse_type("text"))],
        "id",
    )
    return tmp_path, table


class TestDiskSSTables:
    def test_flush_writes_data_file(self, disk_table):
        root, table = disk_table
        for i in range(100):
            table.insert({"id": i, "v": f"row{i}"})
        table.flush()
        files = list((root / "ks" / "cells").glob("*-Data.db"))
        assert len(files) == 1
        assert files[0].stat().st_size > 0

    def test_reads_come_from_disk(self, disk_table):
        root, table = disk_table
        for i in range(200):
            table.insert({"id": i, "v": f"row{i}"})
        table.flush()
        assert table.get(150)["v"] == "row150"
        assert table.get(9999) is None
        assert sum(1 for _ in table.scan()) == 200

    def test_size_matches_files(self, disk_table):
        root, table = disk_table
        for i in range(300):
            table.insert({"id": i, "v": "x" * 40})
        table.flush()
        on_disk = sum(f.stat().st_size for f in (root / "ks" / "cells").glob("*-Data.db"))
        # size_bytes = data files + index + bloom + fixed overhead
        assert table.size_bytes >= on_disk
        assert on_disk > 0

    def test_compaction_removes_old_generations(self, disk_table):
        root, table = disk_table
        for generation in range(5):
            table.insert({"id": generation, "v": "x"})
            table.flush()
        files = list((root / "ks" / "cells").glob("*-Data.db"))
        assert len(files) < 5  # compaction merged and deleted old files
        assert sum(1 for _ in table.scan()) == 5

    def test_truncate_deletes_files(self, disk_table):
        root, table = disk_table
        table.insert({"id": 1, "v": "x"})
        table.flush()
        table.truncate()
        assert list((root / "ks" / "cells").glob("*-Data.db")) == []

    def test_mapper_on_disk_engine(self, tmp_path, sample_cube):
        from repro.mapping.nosql_dwarf import NoSQLDwarfMapper

        engine = NoSQLEngine(data_dir=tmp_path)
        mapper = NoSQLDwarfMapper(engine)
        mapper.install()
        schema_id = mapper.store(sample_cube)
        data_files = list(tmp_path.rglob("*-Data.db"))
        assert data_files  # the probe flushed everything to disk
        rebuilt = mapper.load(schema_id)
        assert rebuilt.total() == sample_cube.total()
