"""ColumnFamily: write path, reads across memtable/SSTables, indexes."""

import pytest

from repro.nosqldb.columnfamily import Column, ColumnFamily
from repro.nosqldb.errors import AlreadyExists, InvalidRequest
from repro.nosqldb.types import parse_type


def make_cf(**kwargs) -> ColumnFamily:
    return ColumnFamily(
        "cells",
        [
            Column("id", parse_type("int")),
            Column("key", parse_type("text")),
            Column("measure", parse_type("int")),
            Column("leaf", parse_type("boolean")),
            Column("children", parse_type("set<int>")),
        ],
        primary_key="id",
        **kwargs,
    )


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(InvalidRequest):
            ColumnFamily("t", [Column("a", parse_type("int"))] * 2, "a")

    def test_pk_must_be_column(self):
        with pytest.raises(InvalidRequest):
            ColumnFamily("t", [Column("a", parse_type("int"))], "zz")

    def test_column_lookup(self):
        cf = make_cf()
        assert cf.column("key").name == "key"
        with pytest.raises(InvalidRequest):
            cf.column("nope")


class TestWriteRead:
    def test_insert_get(self):
        cf = make_cf()
        cf.insert({"id": 1, "key": "Fenian St", "measure": 3, "leaf": True})
        row = cf.get(1)
        assert row["key"] == "Fenian St"
        assert row["children"] is None  # absent column decodes as null

    def test_upsert_overwrites(self):
        cf = make_cf()
        cf.insert({"id": 1, "measure": 1})
        cf.insert({"id": 1, "measure": 2})
        assert cf.get(1)["measure"] == 2
        assert len(cf) == 1

    def test_missing_pk_rejected(self):
        with pytest.raises(InvalidRequest, match="primary key"):
            make_cf().insert({"key": "x"})

    def test_unknown_column_rejected(self):
        with pytest.raises(InvalidRequest):
            make_cf().insert({"id": 1, "bogus": 2})

    def test_type_mismatch_rejected(self):
        with pytest.raises(InvalidRequest):
            make_cf().insert({"id": 1, "measure": "three"})

    def test_set_column_round_trips(self):
        cf = make_cf()
        cf.insert({"id": 1, "children": {4, 5, 6}})
        assert cf.get(1)["children"] == {4, 5, 6}

    def test_read_spans_memtable_and_sstables(self):
        cf = make_cf()
        cf.insert({"id": 1, "measure": 10})
        cf.flush()
        cf.insert({"id": 2, "measure": 20})
        assert cf.get(1)["measure"] == 10
        assert cf.get(2)["measure"] == 20

    def test_newest_version_wins_across_sstables(self):
        cf = make_cf()
        cf.insert({"id": 1, "measure": 1})
        cf.flush()
        cf.insert({"id": 1, "measure": 2})
        cf.flush()
        assert cf.get(1)["measure"] == 2
        assert len(cf) == 1

    def test_scan_sees_all_live_rows(self):
        cf = make_cf()
        for i in range(10):
            cf.insert({"id": i, "measure": i})
        cf.flush()
        for i in range(10, 20):
            cf.insert({"id": i, "measure": i})
        assert {row["id"] for row in cf.scan()} == set(range(20))


class TestDelete:
    def test_delete_from_memtable(self):
        cf = make_cf()
        cf.insert({"id": 1, "measure": 5})
        cf.delete(1)
        assert cf.get(1) is None

    def test_delete_shadows_sstable_row(self):
        cf = make_cf()
        cf.insert({"id": 1, "measure": 5})
        cf.flush()
        cf.delete(1)
        assert cf.get(1) is None
        cf.flush()
        assert cf.get(1) is None
        assert len(cf) == 0

    def test_update(self):
        cf = make_cf()
        cf.insert({"id": 1, "measure": 5, "key": "a"})
        cf.update(1, {"measure": 9})
        row = cf.get(1)
        assert row["measure"] == 9
        assert row["key"] == "a"

    def test_update_pk_rejected(self):
        cf = make_cf()
        cf.insert({"id": 1})
        with pytest.raises(InvalidRequest):
            cf.update(1, {"id": 2})


class TestSecondaryIndex:
    def test_lookup(self):
        cf = make_cf()
        cf.create_index("m_idx", "measure")
        for i in range(20):
            cf.insert({"id": i, "measure": i % 4})
        rows = cf.lookup_indexed("measure", 2)
        assert {row["id"] for row in rows} == {2, 6, 10, 14, 18}

    def test_backfill_on_existing_data(self):
        cf = make_cf()
        for i in range(10):
            cf.insert({"id": i, "measure": i % 2})
        cf.create_index("m_idx", "measure")
        assert len(cf.lookup_indexed("measure", 1)) == 5

    def test_overwrite_updates_index(self):
        cf = make_cf()
        cf.create_index("m_idx", "measure")
        cf.insert({"id": 1, "measure": 7})
        cf.insert({"id": 1, "measure": 8})
        assert cf.lookup_indexed("measure", 7) == []
        assert cf.lookup_indexed("measure", 8)[0]["id"] == 1

    def test_delete_updates_index(self):
        cf = make_cf()
        cf.create_index("m_idx", "measure")
        cf.insert({"id": 1, "measure": 7})
        cf.delete(1)
        assert cf.lookup_indexed("measure", 7) == []

    def test_duplicate_index_rejected(self):
        cf = make_cf()
        cf.create_index("m_idx", "measure")
        with pytest.raises(AlreadyExists):
            cf.create_index("m_idx2", "measure")

    def test_index_on_pk_rejected(self):
        with pytest.raises(InvalidRequest):
            make_cf().create_index("x", "id")

    def test_index_on_set_rejected(self):
        with pytest.raises(InvalidRequest):
            make_cf().create_index("x", "children")

    def test_unindexed_lookup_raises(self):
        with pytest.raises(InvalidRequest, match="ALLOW FILTERING"):
            make_cf().lookup_indexed("measure", 1)

    def test_index_increases_size(self):
        plain = make_cf()
        indexed = make_cf()
        indexed.create_index("m_idx", "measure")
        for i in range(500):
            plain.insert({"id": i, "measure": i % 7})
            indexed.insert({"id": i, "measure": i % 7})
        assert indexed.size_bytes > plain.size_bytes


class TestFlushAndCompaction:
    def test_background_flush_seals_without_building(self):
        cf = make_cf()
        cf.insert({"id": 1})
        cf.seal_memtable()
        assert cf._pending and not cf._sstables
        # reads search sealed memtables in place — no materialisation
        assert cf.get(1) is not None
        assert cf.get_many([1]) == [{c.name: (1 if c.name == "id" else None) for c in cf.columns}]
        assert list(cf.scan())
        assert len(cf) == 1
        assert cf._pending and not cf._sstables
        # only an explicit flush builds the SSTable
        cf.flush()
        assert not cf._pending and cf._sstables

    def test_compaction_caps_sstable_count(self):
        cf = make_cf()
        for round_number in range(6):
            cf.insert({"id": round_number, "measure": 1})
            cf.flush()
        assert len(cf._sstables) < 6

    def test_truncate_clears_everything(self):
        cf = make_cf()
        cf.create_index("m_idx", "measure")
        for i in range(10):
            cf.insert({"id": i, "measure": 1})
        cf.flush()
        cf.truncate()
        assert len(cf) == 0
        assert cf.get(1) is None
        assert cf.lookup_indexed("measure", 1) == []

    def test_commit_log_grows(self):
        from repro.nosqldb.commitlog import CommitLog

        log = CommitLog()
        cf = make_cf(commit_log=log)
        cf.insert({"id": 1, "key": "x"})
        assert log.size_bytes > 0
        assert len(log) == 1


class TestRowCodec:
    def test_encode_decode_round_trip(self):
        cf = make_cf()
        row = {"id": 7, "key": "k", "measure": None, "leaf": False, "children": {1}}
        encoded = cf.encode_row(row, timestamp=123)
        decoded = cf.decode_row(encoded)
        assert decoded == {"id": 7, "key": "k", "measure": None, "leaf": False, "children": {1}}

    def test_cassandra2x_format_repeats_column_names(self):
        cf = make_cf()
        encoded = cf.encode_row({"id": 1, "key": "v"}, timestamp=1)
        assert b"id" in encoded and b"key" in encoded
