"""Failure injection: crash and commit-log replay."""

import pytest

from repro.nosqldb.columnfamily import Column
from repro.nosqldb.commitlog import CommitLog
from repro.nosqldb.engine import NoSQLEngine
from repro.nosqldb.errors import InvalidRequest
from repro.nosqldb.types import parse_type


@pytest.fixture
def keyspace():
    engine = NoSQLEngine()
    ks = engine.create_keyspace("ks")
    ks.create_table(
        "t",
        [Column("id", parse_type("int")), Column("v", parse_type("text")),
         Column("m", parse_type("int"))],
        "id",
    )
    return ks


class TestCommitLog:
    def test_records_round_trip(self):
        log = CommitLog()
        log.append("t", 1, b"row-one")
        log.append("t", "str-key", b"row-two")
        log.append("t", 3, b"")  # tombstone
        assert list(log.records()) == [
            ("t", 1, b"row-one"), ("t", "str-key", b"row-two"), ("t", 3, b""),
        ]

    def test_checkpoint_clears(self):
        log = CommitLog()
        log.append("t", 1, b"x")
        log.checkpoint()
        assert len(log) == 0
        assert list(log.records()) == []


class TestCrashRecovery:
    def test_memtable_rows_recovered(self, keyspace):
        table = keyspace.table("t")
        for i in range(50):
            table.insert({"id": i, "v": f"row{i}", "m": i})
        keyspace.simulate_crash()
        assert table.get(10) is None  # really lost
        replayed = keyspace.replay_commit_log()
        assert replayed == 50
        assert table.get(10)["v"] == "row10"
        assert len(table) == 50

    def test_flushed_rows_survive_without_replay(self, keyspace):
        table = keyspace.table("t")
        table.insert({"id": 1, "v": "durable"})
        table.flush()
        keyspace.clear_commit_log()   # checkpoint after flush
        table.insert({"id": 2, "v": "volatile"})
        keyspace.simulate_crash()
        assert table.get(1)["v"] == "durable"   # from the SSTable
        assert table.get(2) is None
        keyspace.replay_commit_log()
        assert table.get(2)["v"] == "volatile"

    def test_replay_preserves_overwrite_order(self, keyspace):
        table = keyspace.table("t")
        table.insert({"id": 1, "m": 1})
        table.insert({"id": 1, "m": 2})
        keyspace.simulate_crash()
        keyspace.replay_commit_log()
        assert table.get(1)["m"] == 2

    def test_replay_applies_tombstones(self, keyspace):
        table = keyspace.table("t")
        table.insert({"id": 1, "v": "x"})
        table.delete(1)
        keyspace.simulate_crash()
        keyspace.replay_commit_log()
        assert table.get(1) is None

    def test_replay_rebuilds_secondary_indexes(self, keyspace):
        table = keyspace.table("t")
        table.create_index("m_idx", "m")
        for i in range(20):
            table.insert({"id": i, "m": i % 4})
        keyspace.simulate_crash()
        keyspace.replay_commit_log()
        assert {r["id"] for r in table.lookup_indexed("m", 1)} == {1, 5, 9, 13, 17}

    def test_replay_skips_dropped_tables(self, keyspace):
        table = keyspace.table("t")
        table.insert({"id": 1})
        keyspace.drop_table("t")
        assert keyspace.replay_commit_log() == 0

    def test_replay_requires_durable_writes(self):
        ks = NoSQLEngine().create_keyspace("nd", durable_writes=False)
        with pytest.raises(InvalidRequest):
            ks.replay_commit_log()

    def test_replay_is_idempotent(self, keyspace):
        table = keyspace.table("t")
        for i in range(5):
            table.insert({"id": i, "m": i})
        keyspace.replay_commit_log()   # no crash: same end state
        keyspace.replay_commit_log()
        assert len(table) == 5
        assert table.get(3)["m"] == 3

    def test_stored_cube_survives_crash(self):
        """End-to-end: a stored DWARF survives losing all memtables."""
        from repro.dwarf.builder import build_cube
        from repro.core.schema import CubeSchema
        from repro.mapping.nosql_dwarf import NoSQLDwarfMapper

        schema = CubeSchema("c", ["a", "b"])
        cube = build_cube([("x", "y", 1), ("x", "z", 2)], schema)
        mapper = NoSQLDwarfMapper()
        mapper.install()
        schema_id = mapper.store(cube)
        keyspace = mapper.engine.keyspace(mapper.keyspace_name)
        keyspace.simulate_crash()
        keyspace.replay_commit_log()
        assert mapper.load(schema_id).total() == 3
