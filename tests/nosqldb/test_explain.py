"""CQL EXPLAIN: same plan vocabulary as the SQL engine.

Both dialects render :mod:`repro.query` operator trees as
``{"step", "node", "table", "key", "detail"}`` rows in execution order;
the node names (PointLookup, MultiGet, IndexScan, FullScan, Filter,
Sort, Limit, Aggregate, Project) are shared, so a plan reads the same
whichever engine produced it.
"""

import pytest

from repro.nosqldb.engine import NoSQLEngine
from repro.nosqldb.errors import InvalidRequest


@pytest.fixture
def session():
    s = NoSQLEngine().connect()
    s.execute("CREATE KEYSPACE ks")
    s.execute("USE ks")
    s.execute("CREATE TABLE cells (id int PRIMARY KEY, k text, m int)")
    for i in range(5):
        s.execute(f"INSERT INTO cells (id, k, m) VALUES ({i}, 'k{i}', {10 - i})")
    return s


class TestAccessPaths:
    def test_pk_point_is_point_lookup(self, session):
        plan = session.execute("EXPLAIN SELECT * FROM cells WHERE id = 1").one()
        assert plan == {
            "step": 1, "node": "PointLookup", "table": "cells",
            "key": "id", "detail": "primary key",
        }

    def test_pk_in_is_multi_get(self, session):
        rows = list(session.execute("EXPLAIN SELECT k, m FROM cells WHERE id IN (1, 2)"))
        assert rows[0]["node"] == "MultiGet"
        assert rows[0]["detail"] == "primary key, batched"
        assert rows[1]["node"] == "Project"
        assert rows[1]["detail"] == "k, m"

    def test_secondary_index_is_index_scan(self, session):
        session.execute("CREATE INDEX ON cells (m)")
        plan = session.execute("EXPLAIN SELECT * FROM cells WHERE m = 3").one()
        assert plan["node"] == "IndexScan"
        assert plan["detail"] == "secondary-index"
        assert plan["key"] == "m"

    def test_allow_filtering_pushes_condition_into_scan(self, session):
        # The residual condition is absorbed by the scan (predicate
        # pushdown) — no Filter stage remains in the rendered plan.
        rows = list(session.execute(
            "EXPLAIN SELECT * FROM cells WHERE m = 3 ALLOW FILTERING"
        ))
        assert [r["node"] for r in rows] == ["FullScan"]
        assert rows[0]["detail"] == "full scan, pushed=m = 3"

    def test_scan_without_allow_filtering_still_rejected(self, session):
        with pytest.raises(InvalidRequest, match="ALLOW FILTERING"):
            session.execute("EXPLAIN SELECT * FROM cells WHERE m = 3")

    def test_explain_does_not_execute(self, session):
        before = session.execute("SELECT count(*) FROM cells").one()["count"]
        session.execute("EXPLAIN SELECT * FROM cells WHERE id = 0")
        assert session.execute("SELECT count(*) FROM cells").one()["count"] == before


class TestPipelineShape:
    def test_count_applies_after_limit(self, session):
        # CQL count semantics: LIMIT bounds the scanned rows, count reports
        # what survived — so Aggregate sits above Limit in the plan.
        rows = list(session.execute("EXPLAIN SELECT count(*) FROM cells LIMIT 5"))
        assert [r["node"] for r in rows] == ["FullScan", "Limit", "Aggregate"]
        assert session.execute("SELECT count(*) FROM cells LIMIT 3").one()["count"] == 3

    def test_order_by_renders_sort_node(self, session):
        rows = list(session.execute(
            "EXPLAIN SELECT * FROM cells ORDER BY m DESC LIMIT 2"
        ))
        assert [r["node"] for r in rows] == ["FullScan", "Sort", "Limit"]
        assert rows[1]["detail"] == "m DESC"


class TestOrderByExecution:
    def test_ascending_default(self, session):
        rows = session.execute("SELECT id, m FROM cells ORDER BY m LIMIT 3").rows
        assert rows == [{"id": 4, "m": 6}, {"id": 3, "m": 7}, {"id": 2, "m": 8}]

    def test_descending(self, session):
        rows = session.execute("SELECT id FROM cells ORDER BY m DESC").rows
        assert [r["id"] for r in rows] == [0, 1, 2, 3, 4]

    def test_order_by_unknown_column_rejected(self, session):
        with pytest.raises(InvalidRequest, match="nope"):
            session.execute("SELECT * FROM cells ORDER BY nope")

    def test_order_by_on_point_lookup(self, session):
        # ORDER BY forces the generic plan path even for a pk match.
        rows = session.execute(
            "SELECT id, m FROM cells WHERE id IN (0, 3, 1) ORDER BY m"
        ).rows
        assert [r["id"] for r in rows] == [3, 1, 0]


class TestPlanCache:
    def test_warm_select_hits_plan_cache(self, session):
        session.execute("SELECT * FROM cells WHERE id = ?", (1,))
        before = session.plan_cache.stats().hits
        session.execute("SELECT * FROM cells WHERE id = ?", (1,))
        assert session.plan_cache.stats().hits == before + 1

    def test_index_ddl_invalidates_cached_plan(self, session):
        query = "SELECT * FROM cells WHERE m = ? ALLOW FILTERING"
        session.execute(query, (3,))
        session.execute("CREATE INDEX ON cells (m)")
        session.execute(query, (3,))
        assert session.plan_cache.stats().invalidations >= 1
