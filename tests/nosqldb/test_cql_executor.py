"""CQL execution against the engine through sessions."""

import pytest

from repro.nosqldb.engine import NoSQLEngine
from repro.nosqldb.errors import AlreadyExists, InvalidRequest


@pytest.fixture
def session():
    engine = NoSQLEngine()
    s = engine.connect()
    s.execute("CREATE KEYSPACE ks")
    s.execute("USE ks")
    s.execute(
        "CREATE TABLE cells (id int PRIMARY KEY, key text, measure int, "
        "parent int, leaf boolean, children set<int>)"
    )
    return s


def fill(session, n=10):
    p = session.prepare(
        "INSERT INTO cells (id, key, measure, parent, leaf) VALUES (?, ?, ?, ?, ?)"
    )
    session.execute_batch(
        (p, (i, f"k{i}", i % 3, i // 2, i % 2 == 0)) for i in range(n)
    )


class TestDDL:
    def test_duplicate_keyspace_rejected(self, session):
        with pytest.raises(AlreadyExists):
            session.execute("CREATE KEYSPACE ks")

    def test_if_not_exists_swallows(self, session):
        session.execute("CREATE KEYSPACE IF NOT EXISTS ks")
        session.execute(
            "CREATE TABLE IF NOT EXISTS cells (id int PRIMARY KEY)"
        )

    def test_use_unknown_keyspace(self, session):
        with pytest.raises(InvalidRequest):
            session.execute("USE nope")

    def test_drop_table(self, session):
        session.execute("DROP TABLE cells")
        with pytest.raises(InvalidRequest):
            session.execute("SELECT * FROM cells")

    def test_no_keyspace_selected(self):
        s = NoSQLEngine().connect()
        with pytest.raises(InvalidRequest, match="keyspace"):
            s.execute("SELECT * FROM t")


class TestInsertSelect:
    def test_pk_point_read(self, session):
        fill(session)
        row = session.execute("SELECT * FROM cells WHERE id = 3").one()
        assert row["key"] == "k3"

    def test_pk_in_read(self, session):
        fill(session)
        rows = session.execute("SELECT * FROM cells WHERE id IN (1, 2, 99)")
        assert {r["id"] for r in rows} == {1, 2}

    def test_projection(self, session):
        fill(session)
        row = session.execute("SELECT key FROM cells WHERE id = 1").one()
        assert row == {"key": "k1"}

    def test_projection_unknown_column(self, session):
        fill(session)
        with pytest.raises(InvalidRequest):
            session.execute("SELECT nope FROM cells WHERE id = 1")

    def test_count(self, session):
        fill(session, 7)
        assert session.execute("SELECT COUNT(*) FROM cells").one()["count"] == 7

    def test_limit(self, session):
        fill(session)
        assert len(session.execute("SELECT * FROM cells LIMIT 3")) == 3

    def test_filtering_requires_allow(self, session):
        fill(session)
        with pytest.raises(InvalidRequest, match="ALLOW FILTERING"):
            session.execute("SELECT * FROM cells WHERE measure = 1")

    def test_allow_filtering_scan(self, session):
        fill(session, 9)
        rows = session.execute("SELECT * FROM cells WHERE measure = 1 ALLOW FILTERING")
        assert {r["id"] for r in rows} == {1, 4, 7}

    def test_range_filter(self, session):
        fill(session, 10)
        rows = session.execute("SELECT * FROM cells WHERE id >= 8 ALLOW FILTERING")
        assert {r["id"] for r in rows} == {8, 9}

    def test_null_not_inserted(self, session):
        session.execute("INSERT INTO cells (id, key) VALUES (100, null)")
        assert session.execute("SELECT * FROM cells WHERE id = 100").one()["key"] is None

    def test_set_round_trip_through_cql(self, session):
        session.execute("INSERT INTO cells (id, children) VALUES (1, {7, 8})")
        assert session.execute("SELECT * FROM cells WHERE id = 1").one()["children"] == {7, 8}


class TestIndexQueries:
    def test_index_equality(self, session):
        session.execute("CREATE INDEX ON cells (parent)")
        fill(session, 10)
        rows = session.execute("SELECT * FROM cells WHERE parent = 2")
        assert {r["id"] for r in rows} == {4, 5}

    def test_index_plus_residual_filter(self, session):
        session.execute("CREATE INDEX ON cells (parent)")
        fill(session, 10)
        rows = session.execute("SELECT * FROM cells WHERE parent = 2 AND leaf = true")
        assert {r["id"] for r in rows} == {4}


class TestUpdateDelete:
    def test_update(self, session):
        fill(session, 3)
        session.execute("UPDATE cells SET measure = 42 WHERE id = 1")
        assert session.execute("SELECT measure FROM cells WHERE id = 1").one()["measure"] == 42

    def test_update_with_params(self, session):
        fill(session, 3)
        session.execute("UPDATE cells SET measure = ? WHERE id = ?", (9, 2))
        assert session.execute("SELECT measure FROM cells WHERE id = 2").one()["measure"] == 9

    def test_update_requires_pk_where(self, session):
        fill(session, 3)
        with pytest.raises(InvalidRequest):
            session.execute("UPDATE cells SET measure = 1 WHERE key = 'k1'")

    def test_delete(self, session):
        fill(session, 3)
        session.execute("DELETE FROM cells WHERE id = 1")
        assert session.execute("SELECT * FROM cells WHERE id = 1").one() is None

    def test_truncate(self, session):
        fill(session, 5)
        session.execute("TRUNCATE cells")
        assert session.execute("SELECT COUNT(*) FROM cells").one()["count"] == 0


class TestPreparedStatements:
    def test_too_few_params(self, session):
        p = session.prepare("INSERT INTO cells (id, key) VALUES (?, ?)")
        with pytest.raises(InvalidRequest, match="bind marker"):
            session.execute_prepared(p, (1,))

    def test_batch_returns_count(self, session):
        p = session.prepare("INSERT INTO cells (id) VALUES (?)")
        assert session.execute_batch((p, (i,)) for i in range(5)) == 5

    def test_plan_fast_path_matches_generic(self, session):
        p = session.prepare("INSERT INTO cells (id, key, measure) VALUES (?, ?, ?)")
        session.execute_batch([(p, (1, "a", 5))])          # plan path
        session.execute_prepared(p, (2, "b", 6))            # generic path
        a = session.execute("SELECT * FROM cells WHERE id = 1").one()
        b = session.execute("SELECT * FROM cells WHERE id = 2").one()
        assert a["key"] == "a" and b["key"] == "b"
        assert a["measure"] == 5 and b["measure"] == 6

    def test_plan_skips_none_params(self, session):
        p = session.prepare("INSERT INTO cells (id, key) VALUES (?, ?)")
        session.execute_batch([(p, (1, None))])
        assert session.execute("SELECT * FROM cells WHERE id = 1").one()["key"] is None

    def test_plan_missing_pk_raises(self, session):
        p = session.prepare("INSERT INTO cells (id, key) VALUES (?, ?)")
        with pytest.raises(InvalidRequest):
            session.execute_batch([(p, (None, "x"))])


class TestKeyspaceAccounting:
    def test_size_bytes_grows(self, session):
        before = session.engine.keyspace("ks").size_bytes
        fill(session, 200)
        assert session.engine.keyspace("ks").size_bytes > before

    def test_commit_log_and_clear(self, session):
        fill(session, 10)
        ks = session.engine.keyspace("ks")
        assert ks.commit_log_bytes > 0
        ks.clear_commit_log()
        assert ks.commit_log_bytes == 0
