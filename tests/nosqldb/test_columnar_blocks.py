"""Columnar SSTable blocks: round-trip identity, zone-map skipping,
dictionary encoding, mixed-format compaction (docs/columnar_blocks.md).

The columnar layout must be *invisible* except for performance: every
read path — point get, multi-get, scan, compaction input — produces the
same answers, and the same bytes, whichever ``block_format`` the table
was built with.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.sstable_check import columnfamily_check, sstable_check
from repro.nosqldb.columnar import (
    BLOCK_FORMAT_COLUMNAR,
    BLOCK_FORMAT_ROW,
    TAG_COLUMNAR,
    TAG_ROW,
    ColumnarCodec,
    default_block_format,
)
from repro.nosqldb.columnfamily import Column, ColumnFamily
from repro.nosqldb.errors import InvalidRequest
from repro.nosqldb.sstable import SSTable, compact
from repro.nosqldb.types import parse_type
from repro.query.pushdown import PushedCondition, PushedPredicate


def make_cf(block_format, **kwargs) -> ColumnFamily:
    return ColumnFamily(
        "t",
        [
            Column("id", parse_type("int")),
            Column("name", parse_type("text")),
            Column("m", parse_type("int")),
        ],
        "id",
        block_format=block_format,
        **kwargs,
    )


def fill(cf, n=60, names=("a", "b", "c")):
    for i in range(n):
        cf.insert({"id": i, "name": names[i % len(names)], "m": i})


def bound_eq(column, value):
    pred = PushedPredicate(
        (PushedCondition(column, "=", lambda params: params[0], f"{column} = ?0"),)
    )
    return pred.bind((value,))


# ----------------------------------------------------------------------
# property: both formats are byte-identical through every read path
# ----------------------------------------------------------------------
rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),                    # id
        st.one_of(st.none(), st.text(max_size=8)),                 # name
        st.one_of(st.none(), st.integers(-10**6, 10**6)),          # m
    ),
    min_size=1,
    max_size=80,
)


@given(rows=rows_strategy)
@settings(max_examples=60, deadline=None)
def test_formats_agree_byte_for_byte(rows):
    row_cf = make_cf(BLOCK_FORMAT_ROW)
    col_cf = make_cf(BLOCK_FORMAT_COLUMNAR)
    for cf in (row_cf, col_cf):
        for id_, name, m in rows:
            cf.insert({"id": id_, "name": name, "m": m})
        cf.flush()
    row_t, col_t = row_cf._sstables[0], col_cf._sstables[0]
    assert row_t.block_format == BLOCK_FORMAT_ROW
    assert col_t.block_format == BLOCK_FORMAT_COLUMNAR
    # identical encoded items; columnar groups rows into larger blocks
    # (COLUMNAR_BLOCK_FACTOR) so it never has more of them
    assert list(row_t.items()) == list(col_t.items())
    assert len(col_t._block_keys) <= len(row_t._block_keys)
    assert col_t._block_keys[0] == row_t._block_keys[0]
    # identical decoded reads
    assert list(row_cf.scan()) == list(col_cf.scan())
    for id_, _, _ in rows:
        assert row_cf.get(id_) == col_cf.get(id_)
    # the columnar table really holds columnar blocks
    assert col_t.stats().columnar_blocks == len(col_t._blocks)


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_codec_block_roundtrip_is_exact(rows):
    cf = make_cf(BLOCK_FORMAT_COLUMNAR)
    for id_, name, m in rows:
        cf.insert({"id": id_, "name": name, "m": m})
    cf.flush()
    table = cf._sstables[0]
    codec = cf._codec
    for index in range(len(table._blocks)):
        tag, payload = table._block_payload(index)
        assert tag == TAG_COLUMNAR
        vectors = codec.decode_block(payload)
        keys, encoded_rows = vectors.all_rows()
        # decode -> rematerialize -> re-encode reproduces the payload
        reencoded, zones, _, _ = codec.encode_block(list(zip(keys, encoded_rows)))
        assert reencoded == payload
        assert zones == table._zone_maps[index]


# ----------------------------------------------------------------------
# zone maps and dictionary encoding
# ----------------------------------------------------------------------
class TestZoneMaps:
    def test_scan_skips_refuted_blocks(self):
        cf = make_cf(BLOCK_FORMAT_COLUMNAR)
        # sorted key order puts all 'z' names in the trailing blocks
        # (enough rows for several columnar-sized blocks)
        for i in range(2000):
            cf.insert({"id": i, "name": "a" if i < 1000 else "z", "m": i})
        cf.flush()
        table = cf._sstables[0]
        before = table.blocks_skipped
        fetched = table.scan_filtered(bound_eq("name", "z"), True, cf.decode_row)
        rows = [(key, row) for key, row in fetched if row is not None]
        assert {row["name"] for _, row in rows} == {"z"}
        assert len(rows) == 1000
        assert table.blocks_skipped > before

    def test_zone_skip_counts_surface_in_stats(self):
        cf = make_cf(BLOCK_FORMAT_COLUMNAR)
        fill(cf, 120)
        cf.flush()
        list(cf.scan(pushed=bound_eq("m", -1)))  # refutes every block
        stats = cf.stats()
        assert stats.block_format == BLOCK_FORMAT_COLUMNAR
        assert stats.columnar_blocks > 0
        assert stats.blocks_skipped > 0

    def test_pruned_rows_still_shadow_older_layers(self):
        # A newer layer's non-matching row must hide the older layer's
        # matching one — zone skips may only drop oldest-layer blocks.
        cf = make_cf(BLOCK_FORMAT_COLUMNAR)
        cf.insert({"id": 1, "name": "old", "m": 1})
        cf.flush()
        cf.insert({"id": 1, "name": "new", "m": 1})
        cf.flush()
        assert list(cf.scan(pushed=bound_eq("name", "old"))) == []

    def test_all_null_column_is_skippable(self):
        cf = make_cf(BLOCK_FORMAT_COLUMNAR)
        for i in range(40):
            cf.insert({"id": i, "name": None, "m": i})
        cf.flush()
        bound = bound_eq("name", "x")
        assert list(cf.scan(pushed=bound)) == []
        assert bound.blocks_skipped > 0


class TestDictionaries:
    def test_low_cardinality_column_dictionary_encodes(self):
        cf = make_cf(BLOCK_FORMAT_COLUMNAR)
        fill(cf, 120, names=("x", "y"))
        cf.flush()
        stats = cf._sstables[0].stats()
        assert stats.dict_chunks > 0
        assert 0.0 < stats.dict_hit_ratio <= 1.0

    def test_unique_column_stays_plain(self):
        cf = make_cf(BLOCK_FORMAT_COLUMNAR)
        for i in range(60):
            cf.insert({"id": i, "name": f"unique-{i}", "m": i})
        cf.flush()
        # 'name' and 'm' are unique per row; only low-cardinality chunks
        # may dictionary-encode, so plain chunks must dominate.
        stats = cf._sstables[0].stats()
        assert stats.plain_chunks > stats.dict_chunks


# ----------------------------------------------------------------------
# format plumbing and compaction
# ----------------------------------------------------------------------
class TestFormatSelection:
    def test_invalid_format_rejected(self):
        with pytest.raises(InvalidRequest, match="block_format"):
            make_cf("parquet")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_FORMAT", "row")
        assert default_block_format() == BLOCK_FORMAT_ROW
        assert make_cf(None).block_format == BLOCK_FORMAT_ROW
        monkeypatch.setenv("REPRO_BLOCK_FORMAT", "columnar")
        assert default_block_format() == BLOCK_FORMAT_COLUMNAR

    def test_row_format_keeps_row_tags(self):
        cf = make_cf(BLOCK_FORMAT_ROW)
        fill(cf)
        cf.flush()
        table = cf._sstables[0]
        assert all(
            table._block_payload(i)[0] == TAG_ROW for i in range(len(table._blocks))
        )


class TestMixedCompaction:
    @pytest.fixture(autouse=True)
    def _armed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")

    def test_compaction_rewrites_row_inputs_to_columnar(self):
        codec = ColumnarCodec(
            [("id", parse_type("int")), ("m", parse_type("int"))]
        )
        # one row-major and one columnar input, overlapping keys
        def encode(i, m):
            from repro.storage.encoding import encode_text
            from repro.storage.varint import encode_varint
            cell = codec._types["m"].encode(m)
            return encode_varint(1) + encode_text("m") + b"\x00" * 8 + cell

        old = SSTable(
            [(i, encode(i, i)) for i in range(40)],
            block_format=BLOCK_FORMAT_ROW, codec=codec,
        )
        new = SSTable(
            [(i, encode(i, i * 10)) for i in range(20, 60)],
            block_format=BLOCK_FORMAT_COLUMNAR, codec=codec,
        )
        merged = compact(
            [old, new], block_format=BLOCK_FORMAT_COLUMNAR, codec=codec
        )
        assert merged.block_format == BLOCK_FORMAT_COLUMNAR
        assert len(merged) == 60
        # newest layer wins on overlap, all blocks columnar
        items = dict(merged.items())
        assert items[30] == encode(30, 300)
        assert items[5] == encode(5, 5)
        report = sstable_check(merged)
        assert report.ok, report.format_lines()

    def test_family_compaction_under_checkers(self):
        cf = make_cf(BLOCK_FORMAT_COLUMNAR)
        # force enough flushes to trigger compaction (threshold 4)
        for round_ in range(5):
            for i in range(30):
                cf.insert({"id": i, "name": f"r{round_}", "m": round_ * 100 + i})
            cf.flush()
        assert len(cf._sstables) < 5  # compaction ran
        assert all(t.block_format == BLOCK_FORMAT_COLUMNAR for t in cf._sstables)
        assert {r["name"] for r in cf.scan()} == {"r4"}
        report = columnfamily_check(cf)
        assert report.ok, report.format_lines()

    def test_migration_row_to_columnar_via_compaction(self):
        # a table created row-major, later switched: compaction rewrites
        cf = make_cf(BLOCK_FORMAT_ROW)
        fill(cf, 50)
        cf.flush()
        assert cf._sstables[0].block_format == BLOCK_FORMAT_ROW
        cf.block_format = BLOCK_FORMAT_COLUMNAR
        for round_ in range(4):
            for i in range(50, 60):
                cf.insert({"id": i, "name": "x", "m": round_})
            cf.flush()
        assert any(t.block_format == BLOCK_FORMAT_COLUMNAR for t in cf._sstables)
        assert len(list(cf.scan())) == 60
        report = columnfamily_check(cf)
        assert report.ok, report.format_lines()
