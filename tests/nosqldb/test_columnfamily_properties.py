"""Property-based column-family invariants.

The column family must behave like a dict keyed by primary key, whatever
sequence of inserts, overwrites, deletes and flushes arrives — across
memtables, sealed-but-unbuilt memtables, SSTables and compactions.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.nosqldb.columnfamily import Column, ColumnFamily
from repro.nosqldb.types import parse_type

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "flush", "seal"]),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=-1000, max_value=1000),
    ),
    max_size=120,
)


def make_cf() -> ColumnFamily:
    return ColumnFamily(
        "t",
        [Column("id", parse_type("int")), Column("m", parse_type("int"))],
        "id",
    )


@given(ops=ops_strategy)
@settings(max_examples=80, deadline=None)
def test_matches_reference_dict(ops):
    cf = make_cf()
    reference = {}
    for op, key, value in ops:
        if op == "insert":
            cf.insert({"id": key, "m": value})
            reference[key] = value
        elif op == "delete":
            cf.delete(key)
            reference.pop(key, None)
        elif op == "flush":
            cf.flush()
        else:
            cf.seal_memtable()
    # point reads
    for key in range(31):
        row = cf.get(key)
        if key in reference:
            assert row is not None and row["m"] == reference[key]
        else:
            assert row is None
    # full scan
    assert {r["id"]: r["m"] for r in cf.scan()} == reference
    assert len(cf) == len(reference)


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None)
def test_secondary_index_always_consistent(ops):
    cf = make_cf()
    cf.create_index("m_idx", "m")
    reference = {}
    for op, key, value in ops:
        if op == "insert":
            cf.insert({"id": key, "m": value})
            reference[key] = value
        elif op == "delete":
            cf.delete(key)
            reference.pop(key, None)
        elif op == "flush":
            cf.flush()
        else:
            cf.seal_memtable()
    values = set(reference.values())
    for value in list(values)[:10]:
        expected = {k for k, v in reference.items() if v == value}
        got = {r["id"] for r in cf.lookup_indexed("m", value)}
        assert got == expected
