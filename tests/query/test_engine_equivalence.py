"""Differential testing: the same SELECT through both engines.

Both sessions now compile onto the shared :mod:`repro.query` kernel, so
any logical query must produce the same row *set* whichever engine runs
it — with or without a secondary index, which only changes the access
path, never the answer.  Hypothesis generates the data and the query
shapes (point lookups, IN lists, filters, comparisons, ORDER BY, LIMIT,
COUNT); the only dialect differences the harness knows about are CQL's
``ALLOW FILTERING`` suffix and the engines' scan order (row sets are
compared as multisets except under ORDER BY on the unique key, which
must match exactly).

COUNT+LIMIT combinations are deliberately out of scope: SQL counts the
full filtered set while CQL counts what survives the limit, a dialect
difference pinned by the engines' own test suites.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nosqldb.engine import NoSQLEngine
from repro.sqldb.engine import SQLEngine

GROUPS = ("g0", "g1", "g2")
OPS = ("=", "<", "<=", ">", ">=")


rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(GROUPS),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=0,
    max_size=12,
)

query_strategy = st.one_of(
    st.tuples(st.just("point"), st.integers(min_value=0, max_value=14)),
    st.tuples(
        st.just("in"),
        st.lists(st.integers(min_value=0, max_value=14), min_size=1, max_size=5),
    ),
    st.tuples(st.just("eq"), st.sampled_from(GROUPS)),
    st.tuples(
        st.just("cmp"), st.sampled_from(OPS), st.integers(min_value=-1, max_value=5)
    ),
    st.tuples(
        st.just("and"),
        st.sampled_from(GROUPS),
        st.sampled_from(OPS),
        st.integers(min_value=-1, max_value=5),
    ),
    st.tuples(
        st.just("order"),
        st.booleans(),  # descending
        st.one_of(st.none(), st.integers(min_value=0, max_value=6)),  # limit
    ),
    st.tuples(st.just("count"), st.one_of(st.none(), st.sampled_from(GROUPS))),
)


def render(spec):
    """One logical query → (SQL text, CQL text, ordered?)."""
    kind = spec[0]
    if kind == "point":
        where = f"WHERE id = {spec[1]}"
        return f"SELECT * FROM t {where}", f"SELECT * FROM t {where}", False
    if kind == "in":
        members = ", ".join(str(k) for k in spec[1])
        where = f"WHERE id IN ({members})"
        return f"SELECT * FROM t {where}", f"SELECT * FROM t {where}", False
    if kind == "eq":
        where = f"WHERE grp = '{spec[1]}'"
        return (
            f"SELECT id, val FROM t {where}",
            f"SELECT id, val FROM t {where} ALLOW FILTERING",
            False,
        )
    if kind == "cmp":
        where = f"WHERE val {spec[1]} {spec[2]}"
        return (
            f"SELECT id FROM t {where}",
            f"SELECT id FROM t {where} ALLOW FILTERING",
            False,
        )
    if kind == "and":
        where = f"WHERE grp = '{spec[1]}' AND val {spec[2]} {spec[3]}"
        return (
            f"SELECT * FROM t {where}",
            f"SELECT * FROM t {where} ALLOW FILTERING",
            False,
        )
    if kind == "order":
        direction = "DESC" if spec[1] else "ASC"
        tail = f"ORDER BY id {direction}"
        if spec[2] is not None:
            tail += f" LIMIT {spec[2]}"
        return f"SELECT id, grp FROM t {tail}", f"SELECT id, grp FROM t {tail}", True
    if kind == "count":
        if spec[1] is None:
            return "SELECT COUNT(*) FROM t", "SELECT count(*) FROM t", True
        where = f"WHERE grp = '{spec[1]}'"
        return (
            f"SELECT COUNT(*) FROM t {where}",
            f"SELECT count(*) FROM t {where} ALLOW FILTERING",
            True,
        )
    raise AssertionError(spec)


def build_sessions(rows, indexed):
    sql = SQLEngine().connect()
    sql.execute("CREATE DATABASE d")
    sql.execute("USE d")
    sql.execute("CREATE TABLE t (id INT PRIMARY KEY, grp VARCHAR(8), val INT)")
    cql = NoSQLEngine().connect()
    cql.execute("CREATE KEYSPACE k")
    cql.execute("USE k")
    cql.execute("CREATE TABLE t (id int PRIMARY KEY, grp text, val int)")
    if indexed:
        sql.execute("CREATE INDEX t_grp ON t (grp)")
        cql.execute("CREATE INDEX ON t (grp)")
    for rowid, (grp, val) in enumerate(rows):
        statement = f"INSERT INTO t (id, grp, val) VALUES ({rowid}, '{grp}', {val})"
        sql.execute(statement)
        cql.execute(statement)
    return sql, cql


def canonical(rows):
    return sorted(sorted(row.items()) for row in rows)


@given(rows=rows_strategy, query=query_strategy, indexed=st.booleans())
@settings(max_examples=60, deadline=None)
def test_engines_agree(rows, query, indexed):
    sql, cql = build_sessions(rows, indexed)
    sql_text, cql_text, ordered = render(query)
    sql_rows = sql.execute(sql_text).rows
    cql_rows = cql.execute(cql_text).rows
    if ordered:
        assert sql_rows == cql_rows
    else:
        assert canonical(sql_rows) == canonical(cql_rows)


@given(rows=rows_strategy, query=query_strategy)
@settings(max_examples=30, deadline=None)
def test_index_does_not_change_answers(rows, query):
    plain_sql, plain_cql = build_sessions(rows, indexed=False)
    indexed_sql, indexed_cql = build_sessions(rows, indexed=True)
    sql_text, cql_text, _ = render(query)
    assert canonical(plain_sql.execute(sql_text).rows) == canonical(
        indexed_sql.execute(sql_text).rows
    )
    assert canonical(plain_cql.execute(cql_text).rows) == canonical(
        indexed_cql.execute(cql_text).rows
    )


@given(rows=rows_strategy, query=query_strategy)
@settings(max_examples=30, deadline=None)
def test_warm_plan_cache_replays_identically(rows, query):
    """The second (plan-cache-hit) execution returns the same rows."""
    sql, cql = build_sessions(rows, indexed=False)
    sql_text, cql_text, _ = render(query)
    assert sql.execute(sql_text).rows == sql.execute(sql_text).rows
    assert sql.plan_cache.stats().hits >= 1
    assert cql.execute(cql_text).rows == cql.execute(cql_text).rows
    assert cql.plan_cache.stats().hits >= 1
