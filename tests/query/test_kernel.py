"""The shared query kernel: operators, counters, planner rules, cache."""

import pytest

from repro.dwarf.stats import describe
from repro.query import (
    ACCESS_INDEX,
    ACCESS_MULTIGET,
    ACCESS_PK_PREFIX,
    ACCESS_POINT,
    ACCESS_SCAN,
    Filter,
    FullScan,
    Limit,
    MultiGet,
    Plan,
    PlanCache,
    PointLookup,
    Sort,
    TableMeta,
    choose_access,
    evaluate_aggregate,
    null_safe_key,
)
from repro.query.expr import compare


class FakeTable:
    """Minimal storage shim speaking the kernel's leaf protocol."""

    def __init__(self, rows):
        self._rows = {row["id"]: row for row in rows}

    def get(self, key):
        return self._rows.get(key)

    def get_many(self, keys):
        return [self._rows.get(key) for key in keys]

    def scan(self):
        return iter(self._rows.values())


ROWS = [{"id": i, "val": i * 10} for i in range(5)]


class TestOperators:
    def test_point_lookup_counts(self):
        node = PointLookup(FakeTable(ROWS), lambda params: params[0], "t", "id")
        assert node.run((3,)) == [{"id": 3, "val": 30}]
        assert node.run((99,)) == []
        assert node.calls == 2 and node.rows_out == 1 and node.keys_batched == 2

    def test_multi_get_keeps_order_and_drops_missing(self):
        node = MultiGet(FakeTable(ROWS), lambda params: params[0], "t", "id")
        assert [r["id"] for r in node.run(([4, 0, 9],))] == [4, 0]
        assert node.keys_batched == 3

    def test_multi_get_keep_missing_stays_key_aligned(self):
        node = MultiGet(
            FakeTable(ROWS), lambda params: params[0], "t", "id", keep_missing=True
        )
        assert node.run(([4, 9],)) == [{"id": 4, "val": 40}, None]

    def test_filter_sort_limit_pipeline(self):
        plan = Plan(
            Limit(
                Sort(
                    Filter(
                        FullScan(FakeTable(ROWS), "t"),
                        lambda row, params: row["val"] >= params[0],
                        "val >= ?0",
                    ),
                    key=lambda row: null_safe_key(row["val"]),
                    descending=True,
                    detail="val",
                ),
                count=2,
            )
        )
        assert [r["id"] for r in plan.run((20,))] == [4, 3]
        stats = {s.node: s for s in plan.operator_stats()}
        assert stats["FullScan"].rows_out == 5
        assert stats["Filter"].rows_in == 5 and stats["Filter"].rows_out == 3
        assert stats["Limit"].rows_out == 2

    def test_describe_dispatches_plans_and_nodes(self):
        scan = FullScan(FakeTable(ROWS), "t")
        plan = Plan(scan)
        plan.run(())
        assert describe(plan) == plan.operator_stats()
        assert describe(scan)[0].node == "FullScan"
        cache = PlanCache()
        assert describe(cache) == cache.stats()

    def test_reset_counters(self):
        plan = Plan(FullScan(FakeTable(ROWS), "t"))
        plan.run(())
        plan.reset_counters()
        assert all(s.calls == 0 and s.rows_out == 0 for s in plan.operator_stats())


class TestPlannerRules:
    META = TableMeta(
        name="t",
        primary_key=("a", "b"),
        indexed=frozenset({"x"}),
        supports_pk_prefix=True,
    )

    def test_single_pk_point_and_multiget(self):
        meta = TableMeta("t", ("id",), frozenset(), False)
        assert choose_access(meta, [("id", "=")]) == (ACCESS_POINT, 0)
        assert choose_access(meta, [("id", "IN")]) == (ACCESS_MULTIGET, 0)

    def test_pk_prefix_beats_index(self):
        assert choose_access(self.META, [("x", "="), ("a", "=")]) == (
            ACCESS_PK_PREFIX,
            1,
        )

    def test_indexed_equality(self):
        assert choose_access(self.META, [("x", "=")]) == (ACCESS_INDEX, 0)

    def test_everything_else_scans(self):
        assert choose_access(self.META, [("x", "<")]) == (ACCESS_SCAN, None)
        assert choose_access(self.META, []) == (ACCESS_SCAN, None)


class TestExpressions:
    def test_comparisons_reject_null(self):
        assert compare("=", None, 1) is False
        assert compare("ISNULL", None, None) is True
        assert compare("IN", 2, (1, 2)) is True

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            compare("~", 1, 1)

    def test_aggregates(self):
        assert evaluate_aggregate("count", [1, None, 3]) == 3
        assert evaluate_aggregate("sum", []) is None
        assert evaluate_aggregate("avg", [1, 2]) == 1.5


class TestPlanCache:
    def test_guard_failure_counts_invalidation(self):
        cache = PlanCache()
        alive = [True]
        plan = Plan(FullScan(FakeTable(ROWS), "t"), guards=(lambda: alive[0],))
        cache.put("k", plan)
        assert cache.get("k") is plan
        alive[0] = False
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.invalidations == 1 and stats.entries == 0

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        for name in ("a", "b", "c"):
            cache.put(name, Plan(FullScan(FakeTable(ROWS), name)))
        assert cache.get("a") is None and cache.get("c") is not None
        assert cache.stats().entries == 2
