"""EXPLAIN ANALYZE: actuals annotated onto the EXPLAIN vocabulary,
with result rows byte-identical to a plain run.

Hypothesis drives the same query shapes as the engine-equivalence suite
through both engines, single- and multi-shard, and insists that the
analyzed run's ``result_rows`` equal the plain run's rows *exactly*
(same engine, same plan — list equality, not multisets), that the
annotated report is the plain EXPLAIN with the actual columns appended,
and that running under ANALYZE never perturbs a subsequent plain run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import ACTUAL_COLUMNS
from tests.query.test_engine_equivalence import (
    build_sessions,
    query_strategy,
    render,
    rows_strategy,
)
from tests.query.test_sharded_equivalence import env

_EXPLAIN_KEYS = ("step", "node", "table", "key", "detail")


def vocabulary(report):
    """The annotated report with the actual columns stripped back off."""
    return [{k: row[k] for k in _EXPLAIN_KEYS} for row in report]


@given(
    rows=rows_strategy,
    query=query_strategy,
    shards=st.sampled_from((1, 4)),
)
@settings(max_examples=40, deadline=None)
def test_analyzed_rows_byte_identical_both_engines(rows, query, shards):
    with env(REPRO_SHARDS=shards):
        sql, cql = build_sessions(rows, indexed=False)
        sql_text, cql_text, _ = render(query)
        for session, text in ((sql, sql_text), (cql, cql_text)):
            plain = session.execute(text).rows
            analyzed = session.execute(f"EXPLAIN ANALYZE {text}").analyzed
            assert analyzed.result_rows == plain
            assert analyzed.totals["rows"] == len(plain)
            # the report is the EXPLAIN vocabulary plus actuals
            assert vocabulary(analyzed.report) == session.execute(
                f"EXPLAIN {text}"
            ).rows
            for row in analyzed.report:
                assert set(ACTUAL_COLUMNS) <= set(row)
            # analyzing must not perturb later plain executions
            assert session.execute(text).rows == plain


@given(rows=rows_strategy, query=query_strategy)
@settings(max_examples=25, deadline=None)
def test_warm_reanalyze_replays_identically(rows, query):
    """The second EXPLAIN ANALYZE hits the cached AnalyzedStatement and
    still frames per-execution actuals (cumulative counters diffed)."""
    sql, cql = build_sessions(rows, indexed=False)
    sql_text, cql_text, _ = render(query)
    for session, text in ((sql, sql_text), (cql, cql_text)):
        statement = f"EXPLAIN ANALYZE {text}"
        cold = session.execute(statement).analyzed
        warm = session.execute(statement).analyzed
        assert session.plan_cache.stats().hits >= 1
        assert warm.result_rows == cold.result_rows
        # actuals are per-execution deltas, so a warm rerun of the same
        # statement reports the same row counts, not doubled ones
        assert [r["rows"] for r in warm.report] == [
            r["rows"] for r in cold.report
        ]


def test_report_rows_are_the_result_rows():
    """``.rows`` of an EXPLAIN ANALYZE execution is the report (like
    EXPLAIN), while ``.analyzed.result_rows`` carries the query answer."""
    sql, cql = build_sessions([("g0", 1), ("g1", 2)], indexed=False)
    for session in (sql, cql):
        result = session.execute("EXPLAIN ANALYZE SELECT * FROM t WHERE id = 0")
        assert result.rows == result.analyzed.report
        assert result.analyzed.result_rows == [{"id": 0, "grp": "g0", "val": 1}]


def test_sharded_fanout_rows_carry_per_shard_actuals():
    with env(REPRO_SHARDS=4):
        sql, _ = build_sessions([("g0", i) for i in range(8)], indexed=False)
        analyzed = sql.execute("EXPLAIN ANALYZE SELECT id FROM t").analyzed
        fanout = [r for r in analyzed.report if "fanout" in str(r["detail"])]
        assert len(fanout) == 4
        assert sum(r["rows"] for r in fanout) == 8
        assert analyzed.totals["shards"] == 4


def test_timing_accrues_even_with_tracing_off():
    sql, _ = build_sessions([("g0", 1)], indexed=False)
    analyzed = sql.execute("EXPLAIN ANALYZE SELECT * FROM t").analyzed
    root = analyzed.report[-1]
    assert root["wall_ms"] >= 0.0
    assert root["cpu_ms"] >= 0.0
    assert analyzed.totals["wall_s"] >= 0.0
