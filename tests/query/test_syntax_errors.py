"""Syntax-error parity: both parsers report through one shared helper.

:func:`repro.query.syntax_error_message` renders every SQL and CQL
parse/tokenise failure as ``<message> at line L column C (near 'tok')``
— so the two dialects produce byte-identical diagnostics for the same
mistake, and line/column arithmetic lives in exactly one place.
"""

import pytest

from repro.nosqldb.cql.parser import parse as parse_cql
from repro.nosqldb.errors import CQLSyntaxError
from repro.query import line_and_column, syntax_error_message
from repro.sqldb.errors import SQLSyntaxError
from repro.sqldb.sql.parser import parse as parse_sql


def failure_message(parse, error_type, text):
    with pytest.raises(error_type) as excinfo:
        parse(text)
    return str(excinfo.value)


class TestHelper:
    def test_line_and_column_are_one_based(self):
        assert line_and_column("SELECT", 0) == (1, 1)
        assert line_and_column("a\nbcd", 2) == (2, 1)
        assert line_and_column("a\nbcd", 4) == (2, 3)

    def test_offset_clamped_to_text(self):
        assert line_and_column("ab", 99) == (1, 3)

    def test_message_with_token(self):
        message = syntax_error_message("expected FROM", "SELECT x WHERE", 9, "WHERE")
        assert message == "expected FROM at line 1 column 10 (near 'WHERE')"

    def test_message_at_end_of_input(self):
        message = syntax_error_message("expected FROM", "SELECT x", 8)
        assert message == "expected FROM at line 1 column 9 (at end of input)"


class TestDialectParity:
    CASES = [
        "SELECT FROM",                 # missing projection
        "SELECT * FROM",               # missing table name
        "SELECT *\nFROM t WHERE",      # truncated on line 2
        "SELECT * FROM t WHERE id %",  # untokenisable character
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_same_position_both_dialects(self, text):
        sql = failure_message(parse_sql, SQLSyntaxError, text)
        cql = failure_message(parse_cql, CQLSyntaxError, text)
        # Identical wording apart from the dialect name in tokenise errors.
        assert sql.replace("SQL", "CQL") == cql

    def test_format_pins_line_and_column(self):
        message = failure_message(parse_sql, SQLSyntaxError, "SELECT *\nFROM t WHERE")
        assert message == "expected an identifier at line 2 column 13 (at end of input)"

    def test_tokenise_error_names_offender(self):
        sql = failure_message(parse_sql, SQLSyntaxError, "SELECT * FROM t %")
        assert sql == "cannot tokenise SQL at line 1 column 17 (near '%')"
        cql = failure_message(parse_cql, CQLSyntaxError, "SELECT * FROM t %")
        assert cql == "cannot tokenise CQL at line 1 column 17 (near '%')"
