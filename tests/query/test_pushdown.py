"""Predicate pushdown: same answers as Filter operators, on both engines.

A pushed predicate must be a pure relocation of work — never a change in
semantics.  Every query here runs twice: once through the planner (which
pushes eligible conditions into the access leaf) and once against a
reference computed row-wise; on the NoSQL side additionally across both
block formats, where the answers must agree byte-for-byte.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.nosqldb.engine import NoSQLEngine
from repro.query.pushdown import PUSHABLE_OPS
from repro.sqldb.engine import SQLEngine


def nosql_session(block_format):
    s = NoSQLEngine().connect()
    s.execute("CREATE KEYSPACE ks")
    s.execute("USE ks")
    s.execute("CREATE TABLE cells (id int PRIMARY KEY, name text, m int)")
    table = s.engine.keyspace("ks").table("cells")
    table.block_format = block_format  # set before the first flush
    for i in range(150):
        s.execute(
            "INSERT INTO cells (id, name, m) VALUES (?, ?, ?)",
            (i, f"n{i % 4}", i),
        )
    table.flush()
    return s


def sql_session():
    s = SQLEngine().connect()
    s.execute("CREATE DATABASE db")
    s.execute("USE db")
    s.execute("CREATE TABLE cells (id INT PRIMARY KEY, name VARCHAR(10), m INT)")
    for i in range(150):
        s.execute(
            "INSERT INTO cells (id, name, m) VALUES (?, ?, ?)", (i, f"n{i % 4}", i)
        )
    return s


REFERENCE = [{"id": i, "name": f"n{i % 4}", "m": i} for i in range(150)]

# The CQL grammar has no `!=`, so the shared list sticks to the common
# operator subset; `!=` gets its own SQL-side test below.
QUERIES = [
    ("name = ?", ("n1",), lambda r: r["name"] == "n1"),
    ("m < ?", (40,), lambda r: r["m"] < 40),
    ("m >= ?", (120,), lambda r: r["m"] >= 120),
    ("name = ? AND m > ?", ("n2", 60), lambda r: r["name"] == "n2" and r["m"] > 60),
    ("m IN (?, ?, ?)", (3, 7, 999), lambda r: r["m"] in (3, 7, 999)),
]


class TestNoSQLAnswers:
    @pytest.mark.parametrize("block_format", ["row", "columnar"])
    @pytest.mark.parametrize("where,params,ref", QUERIES)
    def test_pushed_scan_matches_reference(self, block_format, where, params, ref):
        s = nosql_session(block_format)
        rows = s.execute(
            f"SELECT * FROM cells WHERE {where} ALLOW FILTERING", params
        ).rows
        expected = [r for r in REFERENCE if ref(r)]
        assert sorted(rows, key=lambda r: r["id"]) == expected

    def test_formats_agree_exactly(self):
        row_s, col_s = nosql_session("row"), nosql_session("columnar")
        for where, params, _ in QUERIES:
            q = f"SELECT * FROM cells WHERE {where} ALLOW FILTERING"
            assert row_s.execute(q, params).rows == col_s.execute(q, params).rows

    def test_index_scan_pushdown_matches_reference(self):
        s = nosql_session("columnar")
        s.execute("CREATE INDEX ON cells (name)")
        rows = s.execute(
            "SELECT * FROM cells WHERE name = ? AND m < ?", ("n3", 50)
        ).rows
        expected = [r for r in REFERENCE if r["name"] == "n3" and r["m"] < 50]
        assert sorted(rows, key=lambda r: r["id"]) == expected

    def test_pushdown_sees_unflushed_writes(self):
        s = nosql_session("columnar")
        s.execute("INSERT INTO cells (id, name, m) VALUES (999, 'n1', -5)")
        rows = s.execute(
            "SELECT * FROM cells WHERE m < ? ALLOW FILTERING", (0,)
        ).rows
        assert rows == [{"id": 999, "name": "n1", "m": -5}]


class TestSQLAnswers:
    @pytest.mark.parametrize("where,params,ref", QUERIES)
    def test_pushed_scan_matches_reference(self, where, params, ref):
        s = sql_session()
        rows = s.execute(f"SELECT * FROM cells WHERE {where}", params).rows
        expected = [r for r in REFERENCE if ref(r)]
        assert sorted(rows, key=lambda r: r["id"]) == expected

    def test_join_condition_stays_residual(self):
        s = sql_session()
        s.execute("CREATE TABLE links (id INT PRIMARY KEY, cell INT)")
        for i in range(30):
            s.execute("INSERT INTO links (id, cell) VALUES (?, ?)", (i, i * 3))
        plan = s.execute(
            "EXPLAIN SELECT c.id FROM cells c JOIN links l ON c.id = l.cell "
            "WHERE c.name = ? AND l.id < ?",
            ("n1", 10),
        ).rows
        details = [row["detail"] for row in plan]
        assert any("pushed=c.name = ?0" in d for d in details)
        assert any(d == "l.id < ?1" for d in details)  # residual Filter
        rows = s.execute(
            "SELECT c.id FROM cells c JOIN links l ON c.id = l.cell "
            "WHERE c.name = ? AND l.id < ?",
            ("n1", 10),
        ).rows
        expected = sorted(
            i * 3 for i in range(10) if (i * 3) % 4 == 1 and i * 3 < 150
        )
        assert sorted(r["c.id"] for r in rows) == expected

    def test_not_equal_pushes_down(self):
        s = sql_session()
        plan = s.execute("EXPLAIN SELECT * FROM cells WHERE name != ?", ("n0",)).rows
        assert plan[0]["detail"] == "full scan, pushed=name != ?0"
        rows = s.execute("SELECT * FROM cells WHERE name != ?", ("n0",)).rows
        expected = [r for r in REFERENCE if r["name"] != "n0"]
        assert sorted(rows, key=lambda r: r["id"]) == expected

    def test_isnull_stays_residual(self):
        s = sql_session()
        s.execute("INSERT INTO cells (id, name, m) VALUES (500, NULL, 1)")
        plan = s.execute("EXPLAIN SELECT * FROM cells WHERE name IS NULL").rows
        assert any(row["node"] == "Filter" for row in plan)
        rows = s.execute("SELECT * FROM cells WHERE name IS NULL").rows
        assert [r["id"] for r in rows] == [500]


class TestExplain:
    def test_fully_absorbed_filter_disappears_cql(self):
        s = nosql_session("columnar")
        plan = s.execute(
            "EXPLAIN SELECT * FROM cells WHERE name = ? ALLOW FILTERING", ("n1",)
        ).rows
        assert [row["node"] for row in plan] == ["FullScan"]
        assert plan[0]["detail"] == "full scan, pushed=name = ?0"

    def test_fully_absorbed_filter_disappears_sql(self):
        s = sql_session()
        plan = s.execute(
            "EXPLAIN SELECT id FROM cells WHERE name = ?", ("n1",)
        ).rows
        assert [row["node"] for row in plan] == ["FullScan", "Project"]
        assert plan[0]["detail"] == "full scan, pushed=name = ?0"

    def test_vocabulary_identical_across_engines(self):
        nosql = nosql_session("columnar").execute(
            "EXPLAIN SELECT * FROM cells WHERE m < ? ALLOW FILTERING", (5,)
        ).rows
        sql = sql_session().execute(
            "EXPLAIN SELECT * FROM cells WHERE m < ?", (5,)
        ).rows
        assert nosql[0]["detail"] == sql[0]["detail"] == "full scan, pushed=m < ?0"

    def test_counters_reach_operator_stats(self):
        s = nosql_session("columnar")
        query = "SELECT * FROM cells WHERE m < ? ALLOW FILTERING"
        s.execute(query, (10,))
        key = next(k for k, _ in s.plan_cache.entries() if query in str(k))
        stats = s.plan_cache.get(key).operator_stats()
        scan = next(op for op in stats if op.node == "FullScan")
        assert scan.rows_pruned > 0


# ----------------------------------------------------------------------
# property: the zone-map prefilter never contradicts row-wise evaluation
# ----------------------------------------------------------------------
ops = sorted(PUSHABLE_OPS - {"IN"})


@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=30),
    op=st.sampled_from(ops),
    needle=st.integers(-60, 60),
)
@settings(max_examples=200, deadline=None)
def test_zone_refutation_is_sound(values, op, needle):
    """A refuted zone must contain no row the predicate accepts."""
    from repro.query.expr import compare
    from repro.query.pushdown import _zone_may_match

    lo, hi = min(values), max(values)
    distinct = frozenset(values) if len(set(values)) <= 16 else None
    zone = (lo, hi, distinct)
    if not _zone_may_match(zone, op, needle):
        assert not any(compare(op, v, needle) for v in values)
