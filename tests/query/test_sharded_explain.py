"""EXPLAIN and tracing for scatter-gather plans.

Both dialects compile onto the same kernel, so a scattered scan must
render the same ``fanout shard=<i>`` vocabulary in SQL and CQL EXPLAIN
output — one row per shard, interleaved before the scattering
operator's own row.  Single-shard layouts render no fanout rows at all
(the historical EXPLAIN output, pinned by the per-dialect suites).

Every scatter task opens a ``query.shard_scan`` span; worker-thread
spans are independent roots that :meth:`Tracer.merged` folds into one
entry, so the trace summary shows the fan-out width regardless of the
worker count.
"""

import pytest

from repro.nosqldb.engine import NoSQLEngine
from repro.sqldb.engine import SQLEngine
from repro.telemetry import get_tracer

from tests.query.test_sharded_equivalence import env

ROWS = [(i, f"g{i % 3}", i * 10) for i in range(12)]


def build_sql(shards):
    with env(REPRO_SHARDS=shards):
        session = SQLEngine().connect()
        session.execute("CREATE DATABASE d")
        session.execute("USE d")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, grp VARCHAR(8), val INT)")
        for rowid, grp, val in ROWS:
            session.execute(
                f"INSERT INTO t (id, grp, val) VALUES ({rowid}, '{grp}', {val})"
            )
    return session


def build_cql(shards):
    with env(REPRO_SHARDS=shards):
        session = NoSQLEngine().connect()
        session.execute("CREATE KEYSPACE k")
        session.execute("USE k")
        session.execute("CREATE TABLE t (id int PRIMARY KEY, grp text, val int)")
        for rowid, grp, val in ROWS:
            session.execute(
                f"INSERT INTO t (id, grp, val) VALUES ({rowid}, '{grp}', {val})"
            )
    return session


def node_details(rows):
    return [(r["node"], r["detail"]) for r in rows]


class TestExplainFanout:
    def test_scan_fanout_rows_match_across_dialects(self):
        sql, cql = build_sql(4), build_cql(4)
        sql_rows = sql.execute("EXPLAIN SELECT id FROM t WHERE val > 50").rows
        cql_rows = cql.execute(
            "EXPLAIN SELECT id FROM t WHERE val > 50 ALLOW FILTERING"
        ).rows
        expected = [("FullScan", f"fanout shard={i}") for i in range(4)]
        assert node_details(sql_rows)[:4] == expected
        assert node_details(cql_rows)[:4] == expected
        # Steps stay dense and ordered across the interleaved rows.
        assert [r["step"] for r in sql_rows] == list(range(1, len(sql_rows) + 1))
        assert [r["step"] for r in cql_rows] == list(range(1, len(cql_rows) + 1))

    def test_count_scatter_renders_fanout_then_aggregate(self):
        for rows in (
            build_sql(4).execute("EXPLAIN SELECT COUNT(*) FROM t").rows,
            build_cql(4).execute("EXPLAIN SELECT count(*) FROM t").rows,
        ):
            details = node_details(rows)
            assert details[:4] == [("FullScan", f"fanout shard={i}") for i in range(4)]
            assert details[4][0] == "FullScan"
            assert details[5][0] == "Aggregate"

    def test_single_shard_renders_no_fanout(self):
        sql, cql = build_sql(1), build_cql(1)
        for rows in (
            sql.execute("EXPLAIN SELECT id FROM t WHERE val > 50").rows,
            cql.execute("EXPLAIN SELECT id FROM t WHERE val > 50 ALLOW FILTERING").rows,
        ):
            assert all("fanout" not in r["detail"] for r in rows)

    def test_point_read_never_fans_out(self):
        cql = build_cql(4)
        rows = cql.execute("EXPLAIN SELECT * FROM t WHERE id = 3").rows
        assert [r["node"] for r in rows] == ["PointLookup"]


@pytest.fixture
def live_tracer():
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = True
    tracer.reset()
    try:
        yield tracer
    finally:
        tracer.enabled = was_enabled
        tracer.reset()


def find_span(nodes, name):
    for node in nodes:
        if node["name"] == name:
            return node
        hit = find_span(node.get("children", ()), name)
        if hit is not None:
            return hit
    return None


class TestShardScanSpans:
    def test_pooled_workers_fold_per_shard_spans(self, live_tracer):
        cql = build_cql(4)
        with env(REPRO_WORKERS=2):
            assert cql.execute("SELECT count(*) FROM t").rows == [{"count": 12}]
        span = find_span(live_tracer.merged(), "query.shard_scan")
        assert span is not None
        assert span["count"] == 4

    def test_inline_workers_trace_the_same_fanout(self, live_tracer):
        cql = build_cql(4)
        with env(REPRO_WORKERS=1):
            cql.execute("SELECT id FROM t WHERE val > 50 ALLOW FILTERING")
        span = find_span(live_tracer.merged(), "query.shard_scan")
        assert span is not None
        assert span["count"] == 4
