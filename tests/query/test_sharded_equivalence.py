"""Differential testing: sharded layouts must answer like one shard.

``REPRO_SHARDS`` redistributes rows across consistent-hash shards and
lets the kernel scatter scans, aggregates and hash-join builds — but it
must never change an answer.  Hypothesis drives the same queries as the
engine-equivalence suite through single-shard and multi-shard sessions
of *both* engines and insists on identical row multisets (exact lists
under ORDER BY on the unique key).  Grouped SQL aggregates are compared
order-normalized: without ORDER BY the standard guarantees no group
order, and shard-gather order differs from single-shard first-seen
order.

Crash recovery replays the commit log through the same ring routing as
the original writes, so a post-replay multi-shard keyspace must also
answer identically — checked here with ``REPRO_CHECK=1`` so the replay
path runs under the runtime invariant checker.
"""

import os
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.query.test_engine_equivalence import (
    build_sessions,
    canonical,
    query_strategy,
    render,
    rows_strategy,
)

SHARD_COUNTS = (2, 4, 8)

AGGREGATES = ("SUM(val)", "MIN(val)", "MAX(val)", "AVG(val)", "COUNT(*)", "COUNT(val)")


@contextmanager
def env(**vars):
    saved = {key: os.environ.get(key) for key in vars}
    os.environ.update({key: str(value) for key, value in vars.items()})
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@given(
    rows=rows_strategy,
    query=query_strategy,
    shards=st.sampled_from(SHARD_COUNTS),
    indexed=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_sharded_layout_answers_identically(rows, query, shards, indexed):
    single_sql, single_cql = build_sessions(rows, indexed)
    with env(REPRO_SHARDS=shards, REPRO_WORKERS=2):
        sharded_sql, sharded_cql = build_sessions(rows, indexed)
        sql_text, cql_text, ordered = render(query)
        single = single_sql.execute(sql_text).rows
        sharded = sharded_sql.execute(sql_text).rows
        if ordered:
            assert sharded == single
        else:
            assert canonical(sharded) == canonical(single)
        single = single_cql.execute(cql_text).rows
        sharded = sharded_cql.execute(cql_text).rows
        if ordered:
            assert sharded == single
        else:
            assert canonical(sharded) == canonical(single)


@given(
    rows=rows_strategy,
    aggregates=st.lists(st.sampled_from(AGGREGATES), min_size=1, max_size=3),
    grouped=st.booleans(),
    shards=st.sampled_from(SHARD_COUNTS),
)
@settings(max_examples=40, deadline=None)
def test_partial_aggregate_merge_matches_serial(rows, aggregates, grouped, shards):
    """Scattered GROUP BY folds per shard and merges; the merged states
    (count sums, avg sum/count pairs, min/max/sum with NULL slices) must
    reproduce the serial single-shard fold exactly."""
    select = ", ".join(dict.fromkeys(aggregates))  # dedupe, keep order
    statement = f"SELECT grp, {select} FROM t GROUP BY grp" if grouped else (
        f"SELECT {select} FROM t"
    )
    single_sql, _ = build_sessions(rows, indexed=False)
    with env(REPRO_SHARDS=shards, REPRO_WORKERS=2):
        sharded_sql, _ = build_sessions(rows, indexed=False)
        single = single_sql.execute(statement).rows
        sharded = sharded_sql.execute(statement).rows
    assert canonical(sharded) == canonical(single)


@given(rows=rows_strategy, query=query_strategy)
@settings(max_examples=15, deadline=None)
def test_recovered_sharded_keyspace_answers_identically(rows, query):
    """Crash + commit-log replay at 4 shards, with runtime invariant
    checks on: the ring re-routes every replayed mutation to its home
    shard, so answers match an untouched single-shard session."""
    single_sql, single_cql = build_sessions(rows, indexed=False)
    _, cql_text, ordered = render(query)
    single = single_cql.execute(cql_text).rows
    with env(REPRO_SHARDS=4, REPRO_CHECK=1):
        _, sharded_cql = build_sessions(rows, indexed=False)
        keyspace = sharded_cql.engine.keyspace("k")
        keyspace.simulate_crash()
        keyspace.replay_commit_log()
        recovered = sharded_cql.execute(cql_text).rows
    if ordered:
        assert recovered == single
    else:
        assert canonical(recovered) == canonical(single)
