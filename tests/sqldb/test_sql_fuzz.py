"""Property-based fuzzing of the SQL path: literal text round trips."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sqldb.engine import SQLEngine

text_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30
)
int_values = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)


def _quote(value: str) -> str:
    return "'" + value.replace("\\", "\\\\").replace("'", "''") + "'"


def _fresh_session():
    session = SQLEngine().connect()
    session.execute("CREATE DATABASE d")
    session.execute("USE d")
    session.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, txt TEXT, num INT, flag BOOLEAN)"
    )
    return session


@given(key=int_values, text=text_values, number=int_values, flag=st.booleans())
@settings(max_examples=120, deadline=None)
def test_literal_insert_round_trips(key, text, number, flag):
    session = _fresh_session()
    session.execute(
        f"INSERT INTO t (id, txt, num, flag) VALUES "
        f"({key}, {_quote(text)}, {number}, {'TRUE' if flag else 'FALSE'})"
    )
    row = session.execute("SELECT * FROM t WHERE id = ?", (key,)).one()
    assert row["txt"] == text
    assert row["num"] == number
    assert row["flag"] is flag


@given(
    rows=st.lists(
        st.tuples(st.integers(min_value=0, max_value=200), int_values),
        min_size=1, max_size=20, unique_by=lambda r: r[0],
    ),
    threshold=int_values,
)
@settings(max_examples=60, deadline=None)
def test_where_filters_match_python(rows, threshold):
    session = _fresh_session()
    values = ", ".join(f"({k}, 'x', {n}, TRUE)" for k, n in rows)
    session.execute(f"INSERT INTO t (id, txt, num, flag) VALUES {values}")
    got = {r["id"] for r in session.execute(
        "SELECT id FROM t WHERE num >= ?", (threshold,)
    )}
    expected = {k for k, n in rows if n >= threshold}
    assert got == expected

    count = session.execute(
        "SELECT COUNT(*) FROM t WHERE num < ?", (threshold,)
    ).one()["count"]
    assert count == len(rows) - len(expected)
