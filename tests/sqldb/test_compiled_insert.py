"""Compiled (zero-parse) SQL inserts must match per-row inserts byte-wise.

Twin databases receive the same rows through the classic parsed path and
through ``SQLSession.compile_insert(...).execute_batch(...)``; the redo
log, binlog, clustered B-tree and secondary indexes must end up
identical, because the batch loop is the per-row insert with the parser
removed — nothing else.
"""

import pytest

from repro.sqldb.engine import SQLEngine
from repro.sqldb.errors import IntegrityError, ProgrammingError
from repro.sqldb.session import SQLCompiledInsert

_DDL = """
CREATE TABLE IF NOT EXISTS readings (
  id INT PRIMARY KEY,
  station VARCHAR(32),
  level INT
)
"""

_INSERT = "INSERT INTO readings (id, station, level) VALUES (?, ?, ?)"

_ROWS = [(1, "north", 10), (2, "south", -3), (3, "north", 7), (4, "east", 99)]


def _fresh(with_index=False):
    engine = SQLEngine()
    session = engine.connect()
    session.execute("CREATE DATABASE IF NOT EXISTS db")
    session.execute("USE db")
    session.execute(_DDL)
    if with_index:
        session.execute("CREATE INDEX idx_station ON readings (station)")
    return engine, session


def _state(engine):
    database = engine.database("db")
    table = database.table("readings")
    return {
        "redo": bytes(database._redo_log),
        "binlog": bytes(database._binlog),
        "clustered": list(table._clustered.items()),
        "secondary": {
            name: list(tree.items()) for name, tree in table._secondary.items()
        },
        "n_rows": table._n_rows,
    }


@pytest.mark.parametrize("with_index", [False, True])
def test_compiled_batch_matches_per_row_bytes(with_index):
    classic_engine, classic = _fresh(with_index)
    prepared = classic.prepare(_INSERT)
    for row in _ROWS:
        classic.execute_prepared(prepared, row)

    compiled_engine, compiled_session = _fresh(with_index)
    plan = compiled_session.compile_insert(_INSERT)
    assert isinstance(plan, SQLCompiledInsert)
    assert plan.execute_batch(_ROWS) == len(_ROWS)

    assert _state(compiled_engine) == _state(classic_engine)


def test_compiled_single_execute_matches_literal_insert():
    classic_engine, classic = _fresh()
    classic.execute("INSERT INTO readings (id, station, level) VALUES (7, 'w', 5)")
    compiled_engine, compiled_session = _fresh()
    compiled_session.compile_insert(_INSERT).execute((7, "w", 5))
    assert _state(compiled_engine) == _state(classic_engine)


def test_compiled_insert_with_constants():
    classic_engine, classic = _fresh()
    classic.execute("INSERT INTO readings (id, station, level) VALUES (1, 'fix', 3)")
    compiled_engine, compiled_session = _fresh()
    plan = compiled_session.compile_insert(
        "INSERT INTO readings (id, station, level) VALUES (?, 'fix', 3)"
    )
    plan.execute_batch([(1,)])
    assert _state(compiled_engine) == _state(classic_engine)


def test_rows_visible_through_sql_after_compiled_batch():
    engine, session = _fresh()
    session.compile_insert(_INSERT).execute_batch(_ROWS)
    rows = sorted(
        (r["id"], r["station"], r["level"])
        for r in session.execute("SELECT * FROM readings")
    )
    assert rows == sorted(_ROWS)


def test_duplicate_primary_key_raises():
    engine, session = _fresh()
    plan = session.compile_insert(_INSERT)
    with pytest.raises(IntegrityError):
        plan.execute_batch([(1, "a", 1), (1, "b", 2)])
    # The first row landed before the duplicate was detected, exactly as
    # two sequential single-row inserts would have behaved.
    rows = list(session.execute("SELECT * FROM readings"))
    assert len(rows) == 1 and rows[0]["station"] == "a"


def test_compile_rejects_non_insert():
    _, session = _fresh()
    with pytest.raises(ProgrammingError):
        session.compile_insert("UPDATE readings SET level = ? WHERE id = ?")
