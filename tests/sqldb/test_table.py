"""Relational table storage: constraints, indexes, size accounting."""

import pytest

from repro.sqldb.errors import IntegrityError, ProgrammingError
from repro.sqldb.table import SQLColumn, Table
from repro.sqldb.types import parse_type


def make_table(primary_key=("id",)):
    return Table(
        "cell",
        [
            SQLColumn("id", parse_type("int")),
            SQLColumn("name", parse_type("varchar(64)")),
            SQLColumn("measure", parse_type("int")),
            SQLColumn("leaf", parse_type("boolean"), not_null=True),
        ],
        primary_key,
    )


class TestSchemaValidation:
    def test_pk_must_exist(self):
        with pytest.raises(ProgrammingError):
            make_table(primary_key=("nope",))

    def test_pk_required(self):
        with pytest.raises(ProgrammingError):
            make_table(primary_key=())

    def test_duplicate_columns(self):
        with pytest.raises(ProgrammingError):
            Table("t", [SQLColumn("a", parse_type("int"))] * 2, ("a",))


class TestInsert:
    def test_insert_get(self):
        t = make_table()
        t.insert({"id": 1, "name": "Fenian St", "measure": 3, "leaf": True})
        assert t.get(1)["name"] == "Fenian St"

    def test_duplicate_pk_rejected(self):
        t = make_table()
        t.insert({"id": 1, "leaf": True})
        with pytest.raises(IntegrityError, match="duplicate primary key"):
            t.insert({"id": 1, "leaf": False})

    def test_null_pk_rejected(self):
        with pytest.raises(IntegrityError):
            make_table().insert({"name": "x", "leaf": True})

    def test_not_null_enforced(self):
        with pytest.raises(IntegrityError, match="NOT NULL"):
            make_table().insert({"id": 1})

    def test_unknown_column_rejected(self):
        with pytest.raises(ProgrammingError):
            make_table().insert({"id": 1, "leaf": True, "bogus": 1})

    def test_type_checked(self):
        with pytest.raises(ProgrammingError):
            make_table().insert({"id": "one", "leaf": True})

    def test_composite_primary_key(self):
        t = Table(
            "node_children",
            [SQLColumn("node_id", parse_type("int")), SQLColumn("cell_id", parse_type("int"))],
            ("node_id", "cell_id"),
        )
        t.insert({"node_id": 1, "cell_id": 2})
        t.insert({"node_id": 1, "cell_id": 3})
        assert t.get((1, 2)) is not None
        with pytest.raises(IntegrityError):
            t.insert({"node_id": 1, "cell_id": 2})


class TestScanUpdateDelete:
    def test_scan_in_pk_order(self):
        t = make_table()
        for i in (3, 1, 2):
            t.insert({"id": i, "leaf": True})
        assert [row["id"] for row in t.scan()] == [1, 2, 3]

    def test_update_where(self):
        t = make_table()
        for i in range(5):
            t.insert({"id": i, "measure": i, "leaf": True})
        touched = t.update_where(lambda r: r["measure"] >= 3, {"measure": 0})
        assert touched == 2
        assert sum(r["measure"] for r in t.scan()) == 0 + 1 + 2

    def test_update_pk_rejected(self):
        t = make_table()
        t.insert({"id": 1, "leaf": True})
        with pytest.raises(ProgrammingError):
            t.update_where(lambda r: True, {"id": 9})

    def test_delete_where(self):
        t = make_table()
        for i in range(6):
            t.insert({"id": i, "leaf": i % 2 == 0})
        assert t.delete_where(lambda r: r["leaf"]) == 3
        assert len(t) == 3

    def test_truncate(self):
        t = make_table()
        t.insert({"id": 1, "leaf": True})
        t.truncate()
        assert len(t) == 0
        assert t.get(1) is None


class TestSecondaryIndexes:
    def test_lookup(self):
        t = make_table()
        t.create_index("m_idx", "measure")
        for i in range(12):
            t.insert({"id": i, "measure": i % 3, "leaf": True})
        assert {r["id"] for r in t.lookup_indexed("measure", 1)} == {1, 4, 7, 10}

    def test_backfill(self):
        t = make_table()
        for i in range(6):
            t.insert({"id": i, "measure": i % 2, "leaf": True})
        t.create_index("m_idx", "measure")
        assert len(t.lookup_indexed("measure", 0)) == 3

    def test_update_maintains_index(self):
        t = make_table()
        t.create_index("m_idx", "measure")
        t.insert({"id": 1, "measure": 5, "leaf": True})
        t.update_where(lambda r: r["id"] == 1, {"measure": 6})
        assert t.lookup_indexed("measure", 5) == []
        assert t.lookup_indexed("measure", 6)[0]["id"] == 1

    def test_delete_maintains_index(self):
        t = make_table()
        t.create_index("m_idx", "measure")
        t.insert({"id": 1, "measure": 5, "leaf": True})
        t.delete_where(lambda r: True)
        assert t.lookup_indexed("measure", 5) == []

    def test_duplicate_index_rejected(self):
        t = make_table()
        t.create_index("m", "measure")
        with pytest.raises(ProgrammingError):
            t.create_index("m2", "measure")


class TestSizeAccounting:
    def test_row_header_overhead_charged(self):
        t = make_table()
        for i in range(100):
            t.insert({"id": i, "leaf": True})
        from repro.sqldb.table import ROW_HEADER_BYTES

        assert t.size_bytes > 100 * ROW_HEADER_BYTES

    def test_index_adds_size(self):
        plain = make_table()
        indexed = make_table()
        indexed.create_index("m", "measure")
        for i in range(200):
            plain.insert({"id": i, "measure": i, "leaf": True})
            indexed.insert({"id": i, "measure": i, "leaf": True})
        assert indexed.size_bytes > plain.size_bytes

    def test_redo_log_receives_mutations(self):
        redo = bytearray()
        t = Table(
            "t", [SQLColumn("id", parse_type("int"))], ("id",), redo_log=redo
        )
        t.insert({"id": 1})
        assert len(redo) > 0
