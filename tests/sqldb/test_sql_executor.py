"""SQL execution: access paths, joins, projections, DML."""

import pytest

from repro.sqldb.engine import SQLEngine
from repro.sqldb.errors import IntegrityError, ProgrammingError


@pytest.fixture
def session():
    engine = SQLEngine()
    s = engine.connect()
    s.execute("CREATE DATABASE dwarf")
    s.execute("USE dwarf")
    s.execute(
        "CREATE TABLE CELL (id INT PRIMARY KEY, cell_key VARCHAR(64), "
        "measure INT, leaf BOOLEAN NOT NULL)"
    )
    s.execute("CREATE TABLE NODE (id INT PRIMARY KEY, root BOOLEAN)")
    s.execute(
        "CREATE TABLE NODE_CHILDREN (node_id INT, cell_id INT, "
        "PRIMARY KEY (node_id, cell_id))"
    )
    return s


def fill(session):
    session.execute(
        "INSERT INTO CELL (id, cell_key, measure, leaf) VALUES "
        "(1, 'Fenian St', 3, TRUE), (2, 'Portobello', 5, TRUE), "
        "(3, 'Dublin', NULL, FALSE), (4, 'Cork', NULL, FALSE)"
    )
    session.execute("INSERT INTO NODE (id, root) VALUES (10, TRUE), (11, FALSE)")
    session.execute(
        "INSERT INTO NODE_CHILDREN (node_id, cell_id) VALUES "
        "(10, 3), (10, 4), (11, 1), (11, 2)"
    )


class TestAccessPaths:
    def test_pk_point(self, session):
        fill(session)
        assert session.execute("SELECT * FROM CELL WHERE id = 2").one()["cell_key"] == "Portobello"

    def test_pk_in(self, session):
        fill(session)
        rows = session.execute("SELECT * FROM CELL WHERE id IN (1, 4, 99)")
        assert {r["id"] for r in rows} == {1, 4}

    def test_full_scan_filter(self, session):
        fill(session)
        rows = session.execute("SELECT * FROM CELL WHERE leaf = TRUE")
        assert {r["id"] for r in rows} == {1, 2}

    def test_indexed_equality(self, session):
        fill(session)
        session.execute("CREATE INDEX m_idx ON CELL (measure)")
        rows = session.execute("SELECT * FROM CELL WHERE measure = 3")
        assert [r["id"] for r in rows] == [1]

    def test_is_null(self, session):
        fill(session)
        rows = session.execute("SELECT * FROM CELL WHERE measure IS NULL")
        assert {r["id"] for r in rows} == {3, 4}

    def test_range_operators(self, session):
        fill(session)
        rows = session.execute("SELECT * FROM CELL WHERE measure >= 4")
        assert {r["id"] for r in rows} == {2}


class TestJoins:
    def test_two_table_join(self, session):
        fill(session)
        rows = session.execute(
            "SELECT c.cell_key FROM NODE_CHILDREN nc JOIN CELL c ON nc.cell_id = c.id "
            "WHERE nc.node_id = 11 ORDER BY c.cell_key"
        )
        assert [r["c.cell_key"] for r in rows] == ["Fenian St", "Portobello"]

    def test_three_table_join(self, session):
        fill(session)
        rows = session.execute(
            "SELECT n.id, c.cell_key FROM NODE n "
            "JOIN NODE_CHILDREN nc ON nc.node_id = n.id "
            "JOIN CELL c ON c.id = nc.cell_id WHERE n.root = TRUE"
        )
        assert {r["c.cell_key"] for r in rows} == {"Dublin", "Cork"}

    def test_unqualified_unambiguous_column(self, session):
        fill(session)
        rows = session.execute(
            "SELECT cell_key FROM NODE_CHILDREN nc JOIN CELL c ON nc.cell_id = c.id"
        )
        assert len(rows) == 4

    def test_ambiguous_column_rejected(self, session):
        fill(session)
        with pytest.raises(ProgrammingError, match="ambiguous"):
            session.execute("SELECT id FROM NODE n JOIN CELL c ON n.id = c.id")

    def test_join_on_must_touch_joined_table(self, session):
        fill(session)
        with pytest.raises(ProgrammingError):
            session.execute(
                "SELECT * FROM NODE n JOIN CELL c ON n.id = n.id"
            )

    def test_duplicate_alias_rejected(self, session):
        fill(session)
        with pytest.raises(ProgrammingError, match="duplicate"):
            session.execute("SELECT * FROM CELL c JOIN NODE c ON c.id = c.id")


class TestProjectionOrderLimit:
    def test_select_star_merges_rows(self, session):
        fill(session)
        row = session.execute(
            "SELECT * FROM NODE_CHILDREN nc JOIN CELL c ON nc.cell_id = c.id LIMIT 1"
        ).one()
        assert "node_id" in row and "cell_key" in row

    def test_order_by_desc(self, session):
        fill(session)
        rows = session.execute("SELECT id FROM CELL ORDER BY id DESC")
        assert [r["id"] for r in rows] == [4, 3, 2, 1]

    def test_order_by_with_nulls(self, session):
        fill(session)
        rows = session.execute("SELECT measure FROM CELL ORDER BY measure")
        values = [r["measure"] for r in rows]
        assert values == [3, 5, None, None]

    def test_count(self, session):
        fill(session)
        assert session.execute("SELECT COUNT(*) FROM CELL").one()["count"] == 4

    def test_count_with_filter(self, session):
        fill(session)
        result = session.execute("SELECT COUNT(*) FROM CELL WHERE leaf = TRUE")
        assert result.one()["count"] == 2


class TestDML:
    def test_multi_row_insert_rowcount(self, session):
        result = session.execute("INSERT INTO NODE (id, root) VALUES (1, TRUE), (2, FALSE)")
        assert result.rowcount == 2

    def test_duplicate_pk_raises_integrity(self, session):
        fill(session)
        with pytest.raises(IntegrityError):
            session.execute("INSERT INTO CELL (id, leaf) VALUES (1, TRUE)")

    def test_update(self, session):
        fill(session)
        result = session.execute("UPDATE CELL SET measure = 0 WHERE leaf = TRUE")
        assert result.rowcount == 2
        assert session.execute("SELECT measure FROM CELL WHERE id = 1").one()["measure"] == 0

    def test_delete(self, session):
        fill(session)
        assert session.execute("DELETE FROM CELL WHERE leaf = FALSE").rowcount == 2
        assert session.execute("SELECT COUNT(*) FROM CELL").one()["count"] == 2

    def test_truncate(self, session):
        fill(session)
        session.execute("TRUNCATE CELL")
        assert session.execute("SELECT COUNT(*) FROM CELL").one()["count"] == 0

    def test_execute_many_plan(self, session):
        p = session.prepare("INSERT INTO NODE (id, root) VALUES (?, ?)")
        assert session.execute_many(p, ((i, False) for i in range(100, 110))) == 10
        assert session.execute("SELECT COUNT(*) FROM NODE").one()["count"] == 10

    def test_prepared_params(self, session):
        fill(session)
        row = session.execute("SELECT * FROM CELL WHERE id = ?", (2,)).one()
        assert row["cell_key"] == "Portobello"

    def test_too_few_params(self, session):
        with pytest.raises(ProgrammingError, match="bind marker"):
            session.execute("SELECT * FROM CELL WHERE id = ?")


class TestDatabases:
    def test_no_database_selected(self):
        s = SQLEngine().connect()
        with pytest.raises(ProgrammingError, match="database"):
            s.execute("SELECT * FROM t")

    def test_qualified_cross_database(self, session):
        session.execute("CREATE DATABASE other")
        session.execute("CREATE TABLE other.t (id INT PRIMARY KEY)")
        session.execute("INSERT INTO other.t (id) VALUES (1)")
        assert session.execute("SELECT COUNT(*) FROM other.t").one()["count"] == 1

    def test_drop_database(self, session):
        session.execute("CREATE DATABASE victim")
        session.execute("DROP DATABASE victim")
        assert not session.engine.has_database("victim")

    def test_use_switches(self, session):
        session.execute("CREATE DATABASE second")
        session.execute("USE second")
        assert session.database == "second"
