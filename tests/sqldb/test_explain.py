"""EXPLAIN: the optimizer's access-path choices, made visible."""

import pytest

from repro.sqldb.engine import SQLEngine


@pytest.fixture
def session():
    s = SQLEngine().connect()
    s.execute("CREATE DATABASE d")
    s.execute("USE d")
    s.execute("CREATE TABLE CELL (id INT PRIMARY KEY, cell_key VARCHAR(64), measure INT)")
    s.execute(
        "CREATE TABLE NODE_CHILDREN (node_id INT, cell_id INT, "
        "PRIMARY KEY (node_id, cell_id))"
    )
    s.execute("CREATE TABLE TAGS (id INT PRIMARY KEY, label VARCHAR(16))")
    return s


class TestBaseAccess:
    def test_pk_point_is_const(self, session):
        plan = session.execute("EXPLAIN SELECT * FROM CELL WHERE id = 1").one()
        assert plan["access"] == "const"
        assert plan["key"] == "id"

    def test_pk_in_is_range(self, session):
        plan = session.execute("EXPLAIN SELECT * FROM CELL WHERE id IN (1, 2)").one()
        assert plan["access"] == "range"

    def test_composite_prefix_is_ref(self, session):
        plan = session.execute(
            "EXPLAIN SELECT * FROM NODE_CHILDREN WHERE node_id = 5"
        ).one()
        assert plan["access"] == "ref:pk-prefix"

    def test_secondary_index_is_ref(self, session):
        session.execute("CREATE INDEX m_idx ON CELL (measure)")
        plan = session.execute("EXPLAIN SELECT * FROM CELL WHERE measure = 3").one()
        assert plan["access"] == "ref:index"

    def test_unindexed_filter_is_full_scan(self, session):
        plan = session.execute(
            "EXPLAIN SELECT * FROM CELL WHERE cell_key = 'x'"
        ).one()
        assert plan["access"] == "ALL"

    def test_no_where_is_full_scan(self, session):
        plan = session.execute("EXPLAIN SELECT * FROM CELL").one()
        assert plan["access"] == "ALL"
        assert plan["key"] is None


class TestJoinAccess:
    def test_join_on_pk_is_eq_ref(self, session):
        rows = list(session.execute(
            "EXPLAIN SELECT * FROM NODE_CHILDREN nc "
            "JOIN CELL c ON nc.cell_id = c.id WHERE nc.node_id = 1"
        ))
        assert rows[0]["access"] == "ref:pk-prefix"
        assert rows[1] == {"step": 2, "table": "c", "access": "eq_ref", "key": "c.id"}

    def test_join_on_indexed_column(self, session):
        session.execute("CREATE INDEX m_idx ON CELL (measure)")
        rows = list(session.execute(
            "EXPLAIN SELECT * FROM TAGS t JOIN CELL c ON t.id = c.measure"
        ))
        assert rows[1]["access"] == "ref:index"

    def test_join_without_index_is_hash(self, session):
        rows = list(session.execute(
            "EXPLAIN SELECT * FROM TAGS t JOIN CELL c ON t.id = c.measure"
        ))
        assert rows[1]["access"] == "hash-join"

    def test_explain_does_not_execute(self, session):
        session.execute("INSERT INTO CELL (id, measure) VALUES (1, 5)")
        before = session.execute("SELECT COUNT(*) FROM CELL").one()["count"]
        session.execute("EXPLAIN SELECT * FROM CELL WHERE id = 1")
        assert session.execute("SELECT COUNT(*) FROM CELL").one()["count"] == before
