"""EXPLAIN: the planner's access-path choices, made visible.

Both engines render plans with the shared :mod:`repro.query` vocabulary:
each row is ``{"step", "node", "table", "key", "detail"}`` in execution
(leaf-first) order.  These tests pin the SQL side; the CQL side is pinned
by ``tests/nosqldb/test_explain.py`` with the same node names.
"""

import pytest

from repro.sqldb.engine import SQLEngine


@pytest.fixture
def session():
    s = SQLEngine().connect()
    s.execute("CREATE DATABASE d")
    s.execute("USE d")
    s.execute("CREATE TABLE CELL (id INT PRIMARY KEY, cell_key VARCHAR(64), measure INT)")
    s.execute(
        "CREATE TABLE NODE_CHILDREN (node_id INT, cell_id INT, "
        "PRIMARY KEY (node_id, cell_id))"
    )
    s.execute("CREATE TABLE TAGS (id INT PRIMARY KEY, label VARCHAR(16))")
    return s


class TestBaseAccess:
    def test_pk_point_is_point_lookup(self, session):
        plan = session.execute("EXPLAIN SELECT * FROM CELL WHERE id = 1").one()
        assert plan["node"] == "PointLookup"
        assert plan["table"] == "CELL"
        assert plan["key"] == "id"
        assert plan["detail"] == "primary key"

    def test_pk_in_is_multi_get(self, session):
        plan = session.execute("EXPLAIN SELECT * FROM CELL WHERE id IN (1, 2)").one()
        assert plan["node"] == "MultiGet"
        assert plan["detail"] == "primary key, batched"

    def test_composite_prefix_is_index_scan(self, session):
        plan = session.execute(
            "EXPLAIN SELECT * FROM NODE_CHILDREN WHERE node_id = 5"
        ).one()
        assert plan["node"] == "IndexScan"
        assert plan["detail"] == "pk-prefix"
        assert plan["key"] == "node_id"

    def test_secondary_index_is_index_scan(self, session):
        session.execute("CREATE INDEX m_idx ON CELL (measure)")
        plan = session.execute("EXPLAIN SELECT * FROM CELL WHERE measure = 3").one()
        assert plan["node"] == "IndexScan"
        assert plan["detail"] == "secondary-index"
        assert plan["key"] == "measure"

    def test_unindexed_filter_is_pushed_full_scan(self, session):
        # The condition is absorbed by the scan (predicate pushdown) —
        # no Filter stage remains in the rendered plan.
        rows = list(session.execute(
            "EXPLAIN SELECT * FROM CELL WHERE cell_key = 'x'"
        ))
        assert rows[0]["node"] == "FullScan"
        assert rows[0]["detail"] == "full scan, pushed=cell_key = 'x'"
        assert rows[1]["node"] == "Project"

    def test_no_where_is_full_scan(self, session):
        plan = session.execute("EXPLAIN SELECT * FROM CELL").one()
        assert plan["node"] == "FullScan"
        assert plan["key"] is None


class TestJoinAccess:
    def test_join_on_pk_is_eq_ref(self, session):
        rows = list(session.execute(
            "EXPLAIN SELECT * FROM NODE_CHILDREN nc "
            "JOIN CELL c ON nc.cell_id = c.id WHERE nc.node_id = 1"
        ))
        assert rows[0]["node"] == "IndexScan"
        assert rows[0]["detail"] == "pk-prefix"
        assert rows[1] == {
            "step": 2, "node": "HashJoin", "table": "c",
            "key": "c.id", "detail": "eq_ref",
        }

    def test_join_on_indexed_column(self, session):
        session.execute("CREATE INDEX m_idx ON CELL (measure)")
        rows = list(session.execute(
            "EXPLAIN SELECT * FROM TAGS t JOIN CELL c ON t.id = c.measure"
        ))
        assert rows[1]["node"] == "HashJoin"
        assert rows[1]["detail"] == "secondary-index"

    def test_join_without_index_is_hash_build(self, session):
        rows = list(session.execute(
            "EXPLAIN SELECT * FROM TAGS t JOIN CELL c ON t.id = c.measure"
        ))
        assert rows[1]["node"] == "HashJoin"
        assert rows[1]["detail"] == "hash build"

    def test_explain_does_not_execute(self, session):
        session.execute("INSERT INTO CELL (id, measure) VALUES (1, 5)")
        before = session.execute("SELECT COUNT(*) FROM CELL").one()["count"]
        session.execute("EXPLAIN SELECT * FROM CELL WHERE id = 1")
        assert session.execute("SELECT COUNT(*) FROM CELL").one()["count"] == before


class TestPipelineShape:
    def test_steps_are_leaf_first_execution_order(self, session):
        rows = list(session.execute(
            "EXPLAIN SELECT measure, COUNT(*) FROM CELL "
            "GROUP BY measure ORDER BY measure LIMIT 2"
        ))
        assert [r["step"] for r in rows] == [1, 2, 3, 4]
        assert [r["node"] for r in rows] == ["FullScan", "Aggregate", "Sort", "Limit"]
        assert rows[1]["detail"] == "count group by measure"
        assert rows[2]["detail"] == "measure ASC"
        assert rows[3]["detail"] == "2"

    def test_projection_detail_lists_columns(self, session):
        rows = list(session.execute(
            "EXPLAIN SELECT id, measure FROM CELL WHERE id = 1"
        ))
        assert rows[-1]["node"] == "Project"
        assert rows[-1]["detail"] == "id, measure"


class TestPlanCache:
    def test_warm_select_hits_plan_cache(self, session):
        session.execute("INSERT INTO CELL (id, measure) VALUES (1, 5)")
        session.execute("SELECT * FROM CELL WHERE id = ?", (1,))
        before = session.plan_cache.stats().hits
        session.execute("SELECT * FROM CELL WHERE id = ?", (1,))
        assert session.plan_cache.stats().hits == before + 1

    def test_index_ddl_invalidates_cached_plan(self, session):
        query = "SELECT * FROM CELL WHERE measure = ?"
        session.execute(query, (3,))
        session.execute("CREATE INDEX m_idx ON CELL (measure)")
        session.execute(query, (3,))
        assert session.plan_cache.stats().invalidations >= 1
        plan = session.execute("EXPLAIN " + query.replace("?", "3")).one()
        assert plan["node"] == "IndexScan"
