"""SQL GROUP BY and aggregate functions."""

import pytest

from repro.sqldb.engine import SQLEngine
from repro.sqldb.errors import ProgrammingError, SQLSyntaxError
from repro.sqldb.sql.parser import parse


@pytest.fixture
def session():
    s = SQLEngine().connect()
    s.execute("CREATE DATABASE d")
    s.execute("USE d")
    s.execute(
        "CREATE TABLE sales (id INT PRIMARY KEY, store VARCHAR(16), "
        "line VARCHAR(16), units INT)"
    )
    rows = [
        (1, "north", "grocery", 10), (2, "north", "grocery", 20),
        (3, "north", "clothes", 5), (4, "south", "grocery", 7),
        (5, "south", "clothes", None),
    ]
    values = ", ".join(
        f"({i}, '{s_}', '{l}', {u if u is not None else 'NULL'})"
        for i, s_, l, u in rows
    )
    s.execute(f"INSERT INTO sales (id, store, line, units) VALUES {values}")
    return s


class TestParsing:
    def test_aggregate_items(self):
        stmt = parse("SELECT store, SUM(units), COUNT(*) FROM sales GROUP BY store")
        assert [a.label for a in stmt.aggregates] == ["sum(units)", "count"]
        assert [r.name for r in stmt.group_by] == ["store"]

    def test_plain_count_star_keeps_fast_path(self):
        stmt = parse("SELECT COUNT(*) FROM sales")
        assert stmt.count and not stmt.aggregates

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT store FROM sales GROUP BY store")

    def test_sum_star_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT SUM(*) FROM sales")

    def test_column_named_like_function(self):
        # "count" not followed by '(' is an ordinary column reference
        stmt = parse("SELECT count FROM sales")
        assert stmt.columns[0].name == "count"


class TestExecution:
    def test_group_sum(self, session):
        rows = list(session.execute(
            "SELECT store, SUM(units) FROM sales GROUP BY store ORDER BY store"
        ))
        assert rows == [
            {"store": "north", "sum(units)": 35},
            {"store": "south", "sum(units)": 7},
        ]

    def test_multiple_aggregates(self, session):
        row = session.execute(
            "SELECT SUM(units), MIN(units), MAX(units), AVG(units), COUNT(units), "
            "COUNT(*) FROM sales"
        ).one()
        assert row["sum(units)"] == 42
        assert row["min(units)"] == 5
        assert row["max(units)"] == 20
        assert row["avg(units)"] == pytest.approx(42 / 4)
        assert row["count(units)"] == 4   # NULL excluded
        assert row["count"] == 5          # COUNT(*) includes the NULL row

    def test_group_by_two_columns(self, session):
        rows = list(session.execute(
            "SELECT store, line, COUNT(*) FROM sales GROUP BY store, line"
        ))
        assert len(rows) == 4

    def test_group_with_where(self, session):
        rows = list(session.execute(
            "SELECT line, SUM(units) FROM sales WHERE store = 'north' GROUP BY line "
            "ORDER BY line"
        ))
        assert rows == [
            {"line": "clothes", "sum(units)": 5},
            {"line": "grocery", "sum(units)": 30},
        ]

    def test_order_by_aggregate_label(self, session):
        rows = list(session.execute(
            "SELECT store, SUM(units) FROM sales GROUP BY store "
            "ORDER BY store DESC LIMIT 1"
        ))
        assert rows[0]["store"] == "south"

    def test_global_aggregate_on_empty_match(self, session):
        row = session.execute(
            "SELECT SUM(units), COUNT(*) FROM sales WHERE store = 'east'"
        ).one()
        assert row["sum(units)"] is None
        assert row["count"] == 0

    def test_non_grouped_column_rejected(self, session):
        with pytest.raises(ProgrammingError, match="GROUP BY"):
            session.execute("SELECT line, SUM(units) FROM sales GROUP BY store")

    def test_group_by_over_join(self, session):
        session.execute("CREATE TABLE stores (store VARCHAR(16) PRIMARY KEY, region VARCHAR(8))")
        session.execute("INSERT INTO stores (store, region) VALUES ('north', 'N'), ('south', 'S')")
        rows = list(session.execute(
            "SELECT st.region, SUM(s.units) FROM sales s "
            "JOIN stores st ON s.store = st.store GROUP BY st.region ORDER BY st.region"
        ))
        assert rows == [
            {"st.region": "N", "sum(s.units)": 35},
            {"st.region": "S", "sum(s.units)": 7},
        ]


class TestWarehouseVerification:
    def test_stored_cube_audited_via_group_by(self, sample_cube):
        """Audit a stored cube's structure with plain SQL aggregates."""
        from repro.mapping.mysql_min import MySQLMinMapper

        mapper = MySQLMinMapper()
        mapper.install()
        mapper.store(sample_cube)
        stats = sample_cube.stats

        counts = {
            row["leaf"]: row["count"]
            for row in mapper.session.execute(
                "SELECT leaf, COUNT(*) FROM DWARF_CELL WHERE cubeid = 1 GROUP BY leaf"
            )
        }
        assert counts[True] == stats.leaf_cell_count
        assert counts[True] + counts[False] == stats.cell_count

        # distinct parent nodes = node count, via GROUP BY parentNodeId
        nodes = list(mapper.session.execute(
            "SELECT parentNodeId, COUNT(*) FROM DWARF_CELL WHERE cubeid = 1 "
            "GROUP BY parentNodeId"
        ))
        assert len(nodes) == stats.node_count

        # the root node's grand-total ALL cell is reachable by SQL alone
        root_all = mapper.session.execute(
            "SELECT item FROM DWARF_CELL WHERE root = TRUE AND name = '__ALL__' "
            "AND cubeid = 1"
        ).one()
        # 3-dim cube: the root ALL points down; follow two ALL hops
        assert root_all is not None
