"""SQL type system."""

import pytest

from repro.sqldb.errors import ProgrammingError
from repro.sqldb.types import (
    BigIntType,
    BooleanType,
    DoubleType,
    IntType,
    TextType,
    VarCharType,
    parse_type,
)


class TestIntTypes:
    def test_round_trip(self):
        t = IntType()
        assert t.decode(t.encode(-42), 0)[0] == -42

    def test_fixed_width(self):
        assert len(IntType().encode(1)) == 4
        assert len(BigIntType().encode(1)) == 8

    def test_int_range_enforced(self):
        with pytest.raises(ProgrammingError, match="out of range"):
            IntType().validate(2 ** 31)
        IntType().validate(2 ** 31 - 1)

    def test_bigint_range(self):
        BigIntType().validate(2 ** 62)
        with pytest.raises(ProgrammingError):
            BigIntType().validate(2 ** 63)

    def test_rejects_bool(self):
        with pytest.raises(ProgrammingError):
            IntType().validate(True)


class TestVarChar:
    def test_round_trip(self):
        t = VarCharType(16)
        assert t.decode(t.encode("Fenian"), 0)[0] == "Fenian"

    def test_length_enforced(self):
        with pytest.raises(ProgrammingError, match="exceeds"):
            VarCharType(4).validate("abcde")

    def test_text_is_wide_varchar(self):
        TextType().validate("x" * 10_000)


class TestBoolean:
    def test_round_trip(self):
        t = BooleanType()
        assert t.decode(t.encode(True), 0)[0] is True

    def test_accepts_int_like_mysql_tinyint(self):
        BooleanType().validate(1)


class TestDouble:
    def test_round_trip(self):
        t = DoubleType()
        assert t.decode(t.encode(1.5), 0)[0] == 1.5


class TestParseType:
    @pytest.mark.parametrize(
        "spec,name",
        [
            ("INT", "int"),
            ("integer", "int"),
            ("BIGINT", "bigint"),
            ("BOOLEAN", "boolean"),
            ("BOOL", "boolean"),
            ("tinyint(1)", "boolean"),
            ("TEXT", "text"),
            ("DOUBLE", "double"),
            ("VARCHAR(64)", "varchar(64)"),
        ],
    )
    def test_specs(self, spec, name):
        assert parse_type(spec).name == name

    def test_bad_varchar_width(self):
        with pytest.raises(ProgrammingError):
            parse_type("varchar(abc)")

    def test_unknown(self):
        with pytest.raises(ProgrammingError):
            parse_type("JSONB")
