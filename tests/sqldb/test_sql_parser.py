"""SQL lexer and parser."""

import pytest

from repro.sqldb.errors import SQLSyntaxError
from repro.sqldb.sql import ast
from repro.sqldb.sql.lexer import tokenize, unquote_string
from repro.sqldb.sql.parser import parse


class TestLexer:
    def test_backtick_identifiers(self):
        tokens = tokenize("SELECT `weird name` FROM t")
        assert tokens[1].kind == "IDENT"
        assert tokens[1].text == "weird name"

    def test_hash_comment(self):
        assert [t.text for t in tokenize("1 # comment\n2")[:-1]] == ["1", "2"]

    def test_block_comment(self):
        assert [t.text for t in tokenize("1 /* x\ny */ 2")[:-1]] == ["1", "2"]

    def test_double_quoted_string(self):
        assert unquote_string(tokenize('"it\'s"')[0].text) == "it's"

    def test_bad_char(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT $$$")


class TestCreate:
    def test_create_database(self):
        stmt = parse("CREATE DATABASE dwarf")
        assert isinstance(stmt, ast.CreateDatabase)

    def test_create_table_fig4_style(self):
        stmt = parse(
            "CREATE TABLE NODE_CHILDREN (node_id INT, cell_id INT, "
            "PRIMARY KEY (node_id, cell_id)) ENGINE=INNODB"
        )
        assert stmt.primary_key == ["node_id", "cell_id"]

    def test_inline_pk_and_not_null(self):
        stmt = parse("CREATE TABLE t (id INT NOT NULL PRIMARY KEY, v VARCHAR(32))")
        assert stmt.primary_key == ["id"]
        assert stmt.columns[0] == ("id", "INT", True)
        assert stmt.columns[1] == ("v", "VARCHAR(32)", False)

    def test_pk_required(self):
        with pytest.raises(SQLSyntaxError):
            parse("CREATE TABLE t (id INT)")

    def test_create_index(self):
        stmt = parse("CREATE INDEX m_idx ON cell (measure)")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.column == "measure"


class TestInsert:
    def test_multi_row_values(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        assert len(stmt.rows) == 3
        assert stmt.rows[1] == [2, "y"]

    def test_placeholders(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (?, ?)")
        assert stmt.rows[0][0].index == 0
        assert stmt.rows[0][1].index == 1

    def test_arity_checked(self):
        with pytest.raises(SQLSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")


class TestSelect:
    def test_join_clause(self):
        stmt = parse(
            "SELECT c.id FROM NODE_CHILDREN nc "
            "JOIN CELL c ON nc.cell_id = c.id WHERE nc.node_id = 5"
        )
        assert len(stmt.joins) == 1
        join = stmt.joins[0]
        assert join.source.alias == "c"
        assert str(join.left) == "nc.cell_id"

    def test_inner_join_keyword(self):
        stmt = parse("SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert len(stmt.joins) == 1

    def test_alias_with_as(self):
        stmt = parse("SELECT * FROM CELL AS c")
        assert stmt.source.alias == "c"

    def test_order_by_desc_limit(self):
        stmt = parse("SELECT * FROM t ORDER BY m DESC LIMIT 5")
        assert stmt.order_by.name == "m"
        assert stmt.descending
        assert stmt.limit == 5

    def test_count_star(self):
        assert parse("SELECT COUNT(*) FROM t").count

    def test_is_null_conditions(self):
        stmt = parse("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
        assert [c.op for c in stmt.where] == ["ISNULL", "NOTNULL"]

    def test_in_condition(self):
        stmt = parse("SELECT * FROM t WHERE id IN (1, 2)")
        assert stmt.where[0].op == "IN"

    def test_inequality_normalised(self):
        assert parse("SELECT * FROM t WHERE a <> 1").where[0].op == "!="

    def test_qualified_database_table(self):
        stmt = parse("SELECT * FROM dwarf.CELL")
        assert stmt.source.database == "dwarf"
        assert stmt.source.table == "CELL"


class TestOtherStatements:
    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE id = 9")
        assert stmt.assignments == [("a", 1), ("b", "x")]

    def test_delete_without_where_allowed(self):
        stmt = parse("DELETE FROM t")
        assert stmt.where == []

    def test_truncate_with_optional_table_keyword(self):
        assert isinstance(parse("TRUNCATE TABLE t"), ast.Truncate)
        assert isinstance(parse("TRUNCATE t"), ast.Truncate)

    def test_use(self):
        assert parse("USE dwarf").name == "dwarf"

    def test_drop(self):
        assert isinstance(parse("DROP TABLE t"), ast.DropTable)
        assert isinstance(parse("DROP DATABASE d"), ast.DropDatabase)

    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse("USE d; SELECT 1")
