"""The tracer: nesting, merging, slow-op log, thread behaviour, caps."""

import threading

from repro.telemetry.trace import _NOOP_SPAN, MAX_SPANS, Tracer


class TestGating:
    def test_disabled_returns_noop_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything")
        assert span is _NOOP_SPAN
        with span as s:
            s.set("key", "value")  # must be a silent no-op
        assert tracer.span_count() == 0
        assert tracer.roots == []

    def test_span_cap(self, tracer):
        tracer._n_spans = MAX_SPANS
        assert tracer.span("over") is _NOOP_SPAN


class TestNesting:
    def test_children_nest_under_open_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.wall_s >= sum(c.wall_s for c in outer.children)

    def test_name_is_positional_only(self, tracer):
        # attribute keys may shadow the positional parameter name
        with tracer.span("op", name="attr-value", schema="s") as span:
            pass
        assert span.attrs == {"name": "attr-value", "schema": "s"}

    def test_set_attribute(self, tracer):
        with tracer.span("op") as span:
            span.set("rows", 7)
        assert tracer.roots[0].attrs["rows"] == 7

    def test_exception_still_finishes_span(self, tracer):
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.roots[0].wall_s >= 0.0
        # the stack is clean: the next span is a root, not a child
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["boom", "after"]


class TestMerged:
    def test_folds_by_name_path(self, tracer):
        for _ in range(3):
            with tracer.span("parent"):
                with tracer.span("child"):
                    pass
        merged = tracer.merged()
        assert len(merged) == 1
        assert merged[0]["count"] == 3
        assert merged[0]["children"][0]["name"] == "child"
        assert merged[0]["children"][0]["count"] == 3

    def test_preserves_first_seen_order(self, tracer):
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            pass
        assert [n["name"] for n in tracer.merged()] == ["b", "a"]

    def test_thread_spans_become_roots_and_fold(self, tracer):
        def work():
            with tracer.span("worker"):
                pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        with tracer.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        merged = {n["name"]: n for n in tracer.merged()}
        assert merged["main"]["count"] == 1
        assert merged["worker"]["count"] == 4  # separate roots, folded


class TestSlowOps:
    def test_threshold_zero_records_everything(self, tracer):
        tracer.slow_ms = 0.0
        with tracer.span("slow", detail="x"):
            pass
        assert len(tracer.slow_ops) == 1
        op = tracer.slow_ops[0]
        assert op["name"] == "slow"
        assert op["attrs"] == {"detail": "x"}
        assert op["wall_ms"] >= 0.0

    def test_fast_ops_not_recorded(self, tracer):
        tracer.slow_ms = 10_000.0
        with tracer.span("fast"):
            pass
        assert tracer.slow_ops == []


class TestReset:
    def test_reset_clears_everything(self, tracer):
        tracer.slow_ms = 0.0
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.slow_ops == []
        assert tracer.span_count() == 0


class TestSlowOpRetention:
    def test_overflow_counted_not_silent(self, tracer):
        from repro.telemetry.trace import MAX_SLOW_OPS

        tracer.slow_ms = 0.0
        for _ in range(MAX_SLOW_OPS + 3):
            with tracer.span("op"):
                pass
        assert len(tracer.slow_ops) == MAX_SLOW_OPS
        assert tracer.slow_ops_dropped == 3

    def test_reset_clears_drop_count(self, tracer):
        from repro.telemetry.trace import MAX_SLOW_OPS

        tracer.slow_ms = 0.0
        for _ in range(MAX_SLOW_OPS + 1):
            with tracer.span("op"):
                pass
        tracer.reset()
        assert tracer.slow_ops_dropped == 0
