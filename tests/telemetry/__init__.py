"""Telemetry subsystem tests."""
