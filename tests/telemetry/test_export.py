"""Exporters: snapshot shape, JSON and Prometheus round-trips, renderers."""

from repro.telemetry import (
    from_json,
    from_prometheus,
    render_metrics_table,
    render_span_tree,
    snapshot,
    to_json,
    to_prometheus,
)


def populated(registry, tracer):
    """A registry + tracer with one of everything recorded."""
    registry.counter("reads_total", "reads", labels=("table",)).labels("t1").inc(3)
    registry.counter("plain_total", "no labels").inc()
    registry.gauge("depth", "stack depth").set(2)
    h = registry.histogram("latency_seconds", "op latency", buckets=(0.01, 1.0))
    h.observe(0.005)
    h.observe(0.5)
    h.observe(50.0)
    with tracer.span("outer", schema="bikes"):
        with tracer.span("inner"):
            pass
    return snapshot(registry, tracer)


class TestSnapshot:
    def test_shape(self, registry, tracer):
        snap = populated(registry, tracer)
        assert set(snap) == {"metrics", "spans", "slow_ops", "slow_ops_dropped"}
        names = [m["name"] for m in snap["metrics"]]
        assert names == sorted(names)
        assert snap["spans"][0]["name"] == "outer"

    def test_zero_value_samples_skipped(self, registry, tracer):
        registry.counter("untouched_total", "never incremented")
        snap = snapshot(registry, tracer)
        assert snap["metrics"] == []

    def test_disabled_snapshot_is_empty(self, registry, tracer):
        snap = snapshot(registry=None, tracer=None)
        assert snap == {
            "metrics": [],
            "spans": [],
            "slow_ops": [],
            "slow_ops_dropped": 0,
        }


class TestJsonRoundTrip:
    def test_round_trip(self, registry, tracer):
        snap = populated(registry, tracer)
        assert from_json(to_json(snap)) == snap


class TestPrometheusRoundTrip:
    def test_round_trip_metrics(self, registry, tracer):
        snap = populated(registry, tracer)
        text = to_prometheus(snap)
        assert from_prometheus(text) == snap["metrics"]

    def test_exposition_format(self, registry, tracer):
        text = to_prometheus(populated(registry, tracer))
        assert "# TYPE reads_total counter" in text
        assert 'reads_total{table="t1"} 3' in text
        assert "# TYPE latency_seconds histogram" in text
        # cumulative buckets: 0.01 -> 1, 1.0 -> 2, +Inf -> 3
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_count 3" in text

    def test_label_escaping(self, registry, tracer):
        registry.counter("odd_total", labels=("k",)).labels('a"b\\c\n').inc()
        snap = snapshot(registry, tracer)
        assert from_prometheus(to_prometheus(snap)) == snap["metrics"]


class TestRenderers:
    def test_metrics_table_lists_every_family(self, registry, tracer):
        snap = populated(registry, tracer)
        table = render_metrics_table(snap)
        for name in ("reads_total", "plain_total", "depth", "latency_seconds"):
            assert name in table

    def test_span_tree_indents_children(self, registry, tracer):
        snap = populated(registry, tracer)
        lines = render_span_tree(snap["spans"]).splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "count=1" in lines[0]


class TestSlowOpDropCount:
    def test_snapshot_carries_the_drop_count(self, registry, tracer):
        tracer.slow_ops_dropped = 7
        snap = snapshot(registry, tracer)
        assert snap["slow_ops_dropped"] == 7
        assert from_json(to_json(snap))["slow_ops_dropped"] == 7

    def test_from_json_defaults_missing_drop_count(self):
        # snapshots from before the counter existed still load
        assert from_json('{"metrics": [], "spans": []}') == {
            "metrics": [],
            "spans": [],
            "slow_ops": [],
            "slow_ops_dropped": 0,
        }
