"""The metrics registry: families, children, gating, reset semantics."""

import pytest

from repro.telemetry.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("ops_total", "operations")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert registry.value("ops_total") == 3.5

    def test_labelled_children(self, registry):
        c = registry.counter("reads_total", labels=("table",))
        c.labels("a").inc(2)
        c.labels("b").inc(3)
        assert registry.value("reads_total", "a") == 2
        assert registry.value("reads_total", "b") == 3
        assert c.value == 5  # family value sums children

    def test_child_identity_cached(self, registry):
        c = registry.counter("hits_total", labels=("kind",))
        assert c.labels("x") is c.labels("x")

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("ops_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_disabled_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("ops_total")
        c.inc(100)
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4


class TestHistogram:
    def test_observe_buckets(self, registry):
        h = registry.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        child = h.labels()
        assert child.count == 4
        assert child.sum == pytest.approx(5.555)
        # one slot per bucket plus the +Inf tail
        assert len(child.counts) == 4
        assert child.counts == [1, 1, 1, 1]

    def test_default_buckets_sorted(self, registry):
        h = registry.histogram("t_seconds")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))


class TestRegistry:
    def test_registration_idempotent(self, registry):
        a = registry.counter("x_total", labels=("k",))
        b = registry.counter("x_total", labels=("k",))
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("b",))

    def test_missing_metric_value_is_zero(self, registry):
        assert registry.value("nope_total") == 0.0
        assert registry.value("nope_total", "label") == 0.0

    def test_families_sorted_by_name(self, registry):
        registry.counter("z_total")
        registry.counter("a_total")
        assert [f.name for f in registry.families()] == ["a_total", "z_total"]

    def test_reset_keeps_cached_children_recording(self, registry):
        c = registry.counter("w_total", labels=("t",))
        child = c.labels("x")
        child.inc(7)
        registry.reset()
        assert registry.value("w_total", "x") == 0.0
        # the reference bound before reset() keeps recording — hot paths
        # cache children at import time and must never go stale
        child.inc(2)
        assert registry.value("w_total", "x") == 2.0


class TestQuantile:
    """Nearest-rank bucket quantiles (exact at bucket boundaries)."""

    def test_exact_when_observations_sit_on_a_bound(self):
        from repro.telemetry.metrics import bucket_quantile

        # 5 observations, all in the bucket bounded by 2: any rank
        # inside that bucket answers exactly 2, never an interpolation.
        buckets, counts = (1, 2, 3), [0, 5, 0, 0]
        for q in (0.01, 0.5, 0.99, 1.0):
            assert bucket_quantile(buckets, counts, q) == 2

    def test_nearest_rank_walks_the_cumulative_counts(self):
        from repro.telemetry.metrics import bucket_quantile

        buckets, counts = (1, 2, 3), [2, 2, 0, 0]
        assert bucket_quantile(buckets, counts, 0.5) == 1   # rank 2 of 4
        assert bucket_quantile(buckets, counts, 0.75) == 2  # rank 3 of 4
        assert bucket_quantile(buckets, counts, 0.0) == 1   # rank clamps to 1

    def test_overflow_clamps_to_last_finite_bound(self):
        from repro.telemetry.metrics import bucket_quantile

        assert bucket_quantile((1, 2, 3), [0, 0, 0, 4], 0.5) == 3

    def test_empty_returns_none(self):
        from repro.telemetry.metrics import bucket_quantile

        assert bucket_quantile((1, 2), [0, 0, 0], 0.5) is None

    def test_out_of_range_q_rejected(self):
        from repro.telemetry.metrics import bucket_quantile

        for q in (-0.1, 1.1):
            with pytest.raises(ValueError):
                bucket_quantile((1,), [1, 0], q)

    def test_child_quantile_and_percentiles(self, registry):
        h = registry.histogram("q_seconds", buckets=(0.01, 0.1, 1.0))
        child = h.labels()
        assert child.quantile(0.5) is None
        assert child.percentiles() == {}
        for _ in range(9):
            child.observe(0.01)
        child.observe(1.0)
        assert child.quantile(0.5) == 0.01
        assert child.percentiles() == {"p50": 0.01, "p90": 0.01, "p99": 1.0}

    def test_family_quantile_merges_labelled_children(self, registry):
        h = registry.histogram("m_seconds", labels=("op",), buckets=(0.01, 1.0))
        h.labels("read").observe(0.01)
        h.labels("write").observe(1.0)
        h.labels("write").observe(1.0)
        # merged counts: [1, 2, 0] -> rank 2 of 3 lands in the 1.0 bucket
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.25) == 0.01
