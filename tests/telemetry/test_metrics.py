"""The metrics registry: families, children, gating, reset semantics."""

import pytest

from repro.telemetry.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("ops_total", "operations")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert registry.value("ops_total") == 3.5

    def test_labelled_children(self, registry):
        c = registry.counter("reads_total", labels=("table",))
        c.labels("a").inc(2)
        c.labels("b").inc(3)
        assert registry.value("reads_total", "a") == 2
        assert registry.value("reads_total", "b") == 3
        assert c.value == 5  # family value sums children

    def test_child_identity_cached(self, registry):
        c = registry.counter("hits_total", labels=("kind",))
        assert c.labels("x") is c.labels("x")

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("ops_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_disabled_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("ops_total")
        c.inc(100)
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4


class TestHistogram:
    def test_observe_buckets(self, registry):
        h = registry.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        child = h.labels()
        assert child.count == 4
        assert child.sum == pytest.approx(5.555)
        # one slot per bucket plus the +Inf tail
        assert len(child.counts) == 4
        assert child.counts == [1, 1, 1, 1]

    def test_default_buckets_sorted(self, registry):
        h = registry.histogram("t_seconds")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))


class TestRegistry:
    def test_registration_idempotent(self, registry):
        a = registry.counter("x_total", labels=("k",))
        b = registry.counter("x_total", labels=("k",))
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("b",))

    def test_missing_metric_value_is_zero(self, registry):
        assert registry.value("nope_total") == 0.0
        assert registry.value("nope_total", "label") == 0.0

    def test_families_sorted_by_name(self, registry):
        registry.counter("z_total")
        registry.counter("a_total")
        assert [f.name for f in registry.families()] == ["a_total", "z_total"]

    def test_reset_keeps_cached_children_recording(self, registry):
        c = registry.counter("w_total", labels=("t",))
        child = c.labels("x")
        child.inc(7)
        registry.reset()
        assert registry.value("w_total", "x") == 0.0
        # the reference bound before reset() keeps recording — hot paths
        # cache children at import time and must never go stale
        child.inc(2)
        assert registry.value("w_total", "x") == 2.0
