"""Instrumentation smoke: every layer emits spans/metrics when enabled,
and the kernel's per-operator clock stays off when tracing is disabled."""

from repro.dwarf.builder import DwarfBuilder
from repro.mapping.registry import make_mapper
from repro.mapping.stored_query import stored_point_query


def span_names(merged, out=None):
    out = [] if out is None else out
    for node in merged:
        out.append(node["name"])
        span_names(node.get("children", ()), out)
    return out


class TestLayerCoverage:
    def test_build_store_query_emit_spans_and_metrics(
        self, live_telemetry, sample_facts, sample_cube
    ):
        registry, tracer = live_telemetry
        registry.reset()  # the cube fixtures may have recorded builds already
        DwarfBuilder(sample_facts.schema).build(sample_facts)
        mapper = make_mapper("NoSQL-DWARF")
        schema_id = mapper.store(sample_cube, probe_size=False)
        vector = ("Ireland", "Dublin", "Portobello")
        assert stored_point_query(mapper, schema_id, vector) == 5

        names = span_names(tracer.merged())
        for expected in ("dwarf.build", "dwarf.sort", "dwarf.scan",
                         "mapper.transform", "stored.point_query"):
            assert expected in names, names

        assert registry.value("dwarf_builds_total", "serial") == 1
        assert registry.value("dwarf_merges_total") > 0
        assert registry.value("nosqldb_writes_total") > 0
        assert registry.value("nosqldb_commitlog_appends_total") > 0
        assert registry.value("mapper_stored_queries_total", "NoSQL-DWARF") == 1

    def test_btree_metrics(self, live_telemetry):
        from repro.storage.btree import BTree

        registry, _ = live_telemetry
        tree = BTree(page_capacity=4)
        for i in range(40):
            tree.insert(i, b"v")
        assert registry.value("btree_pages_allocated_total", "leaf") > 1
        assert registry.value("btree_page_splits_total", "leaf") > 0
        assert registry.value("btree_page_splits_total", "internal") > 0

    def test_plan_cache_metrics(self, live_telemetry, sample_cube):
        registry, _ = live_telemetry
        mapper = make_mapper("NoSQL-DWARF")
        schema_id = mapper.store(sample_cube, probe_size=False)
        vector = ("France", "Paris", "Rue Cler")
        stored_point_query(mapper, schema_id, vector)
        stored_point_query(mapper, schema_id, vector)
        assert registry.value("query_plan_cache_misses_total") > 0
        assert registry.value("query_plan_cache_hits_total") > 0


class TestOperatorClock:
    def test_seconds_accumulate_only_when_tracing(self, sample_cube):
        from repro.telemetry import get_tracer

        def run():
            mapper = make_mapper("NoSQL-DWARF")
            schema_id = mapper.store(sample_cube, probe_size=False)
            stored_point_query(mapper, schema_id, ("France", "Paris", "Rue Cler"))
            seconds = 0.0
            for _key, plan in mapper.session.plan_cache.entries():
                stats = getattr(plan, "operator_stats", None)
                if stats is not None:
                    seconds += sum(op.seconds for op in stats())
            return seconds

        tracer = get_tracer()
        was = tracer.enabled
        try:
            tracer.enabled = False
            assert run() == 0.0
            tracer.enabled = True
            assert run() > 0.0
        finally:
            tracer.enabled = was
            tracer.reset()


class TestEtlSpans:
    def test_extract_and_parse_spans(self, live_telemetry, bike_bundle):
        from repro.smartcity.bikes import bikes_pipeline

        registry, tracer = live_telemetry
        documents, _facts, _cube = bike_bundle
        registry.reset()  # the bundle fixture already ran one extract
        tracer.reset()
        facts = bikes_pipeline().extract(documents)
        assert len(facts) > 0
        names = span_names(tracer.merged())
        assert "etl.extract" in names and "etl.parse" in names
        assert registry.value("etl_facts_total") == len(facts)
        assert registry.value("etl_documents_total") == len(documents)
