"""Query history: fingerprints, the bounded ring, profiles, gating."""

import pytest

from repro.telemetry import get_query_log
from repro.telemetry.querylog import (
    QueryLog,
    fingerprint,
    latency_bucket,
    profiles_from_records,
)


class TestFingerprint:
    def test_literals_masked(self):
        assert (
            fingerprint("SELECT * FROM t WHERE id = 3 AND name = 'dublin'")
            == "SELECT * FROM T WHERE ID = ? AND NAME = ?"
        )

    def test_prepared_and_inline_share_a_fingerprint(self):
        prepared = fingerprint("select * from t where id = ?")
        inline = fingerprint("SELECT  *  FROM t\n WHERE id = 42")
        assert prepared == inline

    def test_identifiers_with_digits_survive(self):
        assert fingerprint("SELECT a1 FROM t1") == "SELECT A1 FROM T1"

    def test_digits_inside_strings_vanish_with_the_string(self):
        assert fingerprint("WHERE k = '123abc'") == "WHERE K = ?"

    def test_whitespace_collapsed_and_case_folded(self):
        assert fingerprint("  select\t1 ,\n 2  ") == "SELECT ? , ?"

    def test_floats_masked(self):
        assert fingerprint("WHERE x > 1.5") == "WHERE X > ?"


class TestLatencyBucket:
    def test_maps_to_bucket_upper_bound(self):
        assert latency_bucket(0.0005) == 0.0005
        assert latency_bucket(0.0006) == 0.001

    def test_clamps_past_last_finite_bound(self):
        assert latency_bucket(1e9) == latency_bucket(10.0)


class TestRing:
    def test_bounded_with_drop_count(self):
        log = QueryLog(enabled=True, max_records=3)
        for i in range(5):
            log.record(f"SELECT {i}", "sql", 0.001)
        assert len(log) == 3
        assert log.dropped == 2
        # the ring keeps the newest records
        assert all(r.fingerprint == "SELECT ?" for r in log.records())

    def test_reset_clears_records_and_drops(self):
        log = QueryLog(enabled=True, max_records=2)
        for _ in range(4):
            log.record("SELECT 1", "sql", 0.001)
        log.reset()
        assert len(log) == 0
        assert log.dropped == 0


class TestProfiles:
    def test_quantiles_and_aggregates(self):
        log = QueryLog(enabled=True, max_records=256)
        for _ in range(90):
            log.record("SELECT * FROM t WHERE id = 1", "sql", 0.001, rows=1)
        for _ in range(10):
            log.record("SELECT * FROM t WHERE id = 2", "sql", 1.0, rows=1)
        profiles = log.profiles()
        assert len(profiles) == 1  # same fingerprint
        profile = profiles[0]
        assert profile["count"] == 100
        assert profile["rows"] == 100
        assert profile["p50_s"] == 0.001  # exact at the bucket bound
        assert profile["p99_s"] == 1.0
        assert profile["total_s"] == pytest.approx(90 * 0.001 + 10 * 1.0)

    def test_sorted_by_total_time(self):
        log = QueryLog(enabled=True)
        log.record("SELECT a FROM t", "sql", 0.001)
        log.record("SELECT b FROM t", "sql", 0.5)
        fingerprints = [p["fingerprint"] for p in log.profiles()]
        assert fingerprints == ["SELECT B FROM T", "SELECT A FROM T"]

    def test_round_trips_through_serialized_records(self):
        log = QueryLog(enabled=True)
        log.record("SELECT * FROM t WHERE id = 7", "sql", 0.01, rows=1,
                   cache_hits=2, blocks_skipped=1, rows_pruned=3,
                   shards=4, epoch=2)
        log.record("stored:NoSQL-DWARF:point_query", "stored", 0.02, rows=1)
        assert profiles_from_records(log.as_dicts()) == log.profiles()


class TestGating:
    def test_disabled_path_never_touches_the_log(self, monkeypatch):
        """With REPRO_QUERY_LOG off the hot path must not compute a
        fingerprint, allocate a record, or call the log at all."""
        import repro.telemetry.querylog as querylog

        log = get_query_log()
        monkeypatch.setattr(log, "enabled", False)

        def boom(*args, **kwargs):
            raise AssertionError("disabled path touched the query log")

        monkeypatch.setattr(QueryLog, "record", boom)
        monkeypatch.setattr(querylog, "fingerprint", boom)

        from repro.nosqldb.engine import NoSQLEngine
        from repro.sqldb.engine import SQLEngine

        sql = SQLEngine().connect()
        sql.execute("CREATE DATABASE d")
        sql.execute("USE d")
        sql.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        sql.execute("INSERT INTO t (id, v) VALUES (1, 10)")
        assert sql.execute("SELECT * FROM t WHERE id = 1").rows

        cql = NoSQLEngine().connect()
        cql.execute("CREATE KEYSPACE k")
        cql.execute("USE k")
        cql.execute("CREATE TABLE t (id int PRIMARY KEY, v int)")
        cql.execute("INSERT INTO t (id, v) VALUES (1, 10)")
        assert cql.execute("SELECT * FROM t WHERE id = 1").rows
        assert len(log) == 0

    def test_enabled_records_both_dialects(self, monkeypatch):
        log = get_query_log()
        monkeypatch.setattr(log, "enabled", True)
        log.reset()
        try:
            from repro.nosqldb.engine import NoSQLEngine
            from repro.sqldb.engine import SQLEngine

            sql = SQLEngine().connect()
            sql.execute("CREATE DATABASE d")
            sql.execute("USE d")
            sql.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            sql.execute("INSERT INTO t (id, v) VALUES (1, 10)")
            sql.execute("SELECT * FROM t WHERE id = 1")
            cql = NoSQLEngine().connect()
            cql.execute("CREATE KEYSPACE k")
            cql.execute("USE k")
            cql.execute("CREATE TABLE t (id int PRIMARY KEY, v int)")
            cql.execute("INSERT INTO t (id, v) VALUES (1, 10)")
            cql.execute("SELECT * FROM t WHERE id = 1")
            dialects = {r.dialect for r in log.records()}
            assert {"sql", "cql"} <= dialects
            select = next(
                r for r in log.records()
                if r.fingerprint == "SELECT * FROM T WHERE ID = ?"
            )
            assert select.rows == 1
        finally:
            log.reset()
