"""Shared fixtures: fresh, private telemetry objects plus a guarded
switch for the process-wide singletons (restored after every test so
ordering never leaks an enabled tracer into unrelated suites)."""

from __future__ import annotations

import pytest

from repro.telemetry import get_registry, get_tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


@pytest.fixture
def registry() -> MetricsRegistry:
    """A private, enabled registry (no global state touched)."""
    return MetricsRegistry(enabled=True)


@pytest.fixture
def tracer() -> Tracer:
    """A private, enabled tracer (no global state touched)."""
    return Tracer(enabled=True)


@pytest.fixture
def live_telemetry():
    """Enable the process-wide singletons for one test, then restore.

    Yields ``(registry, tracer)`` — the same objects every instrumented
    module holds a reference to, reset to a clean slate on entry.
    """
    reg, trc = get_registry(), get_tracer()
    was_metrics, was_trace = reg.enabled, trc.enabled
    reg.enabled = True
    trc.enabled = True
    reg.reset()
    trc.reset()
    try:
        yield reg, trc
    finally:
        reg.enabled = was_metrics
        trc.enabled = was_trace
        reg.reset()
        trc.reset()
