"""Flight-recorder debug bundles: assembly, validation, reload."""

import json

import pytest

from repro.telemetry import (
    BUNDLE_SCHEMA_VERSION,
    build_bundle,
    bundle_to_json,
    collect_env,
    from_bundle,
    validate_bundle,
)
from repro.telemetry.querylog import QueryLog


@pytest.fixture
def bundle(registry, tracer):
    registry.counter("etl_records_total", "records").inc(3)
    with tracer.span("etl.parse"):
        pass
    log = QueryLog(enabled=True, max_records=8)
    log.record("SELECT * FROM t WHERE id = 1", "sql", 0.01, rows=1)
    return build_bundle(
        registry=registry,
        tracer=tracer,
        query_log=log,
        plan_cache=[{"key": ["d", "SELECT * FROM t"], "plan": []}],
        epochs=[{"id": 1, "epoch": 2}],
        shards={"configured": 4},
    )


class TestBuild:
    def test_schema_versioned_and_valid(self, bundle):
        assert bundle["schema_version"] == BUNDLE_SCHEMA_VERSION
        validate_bundle(bundle)  # must not raise

    def test_carries_every_section(self, bundle):
        assert bundle["telemetry"]["metrics"]
        assert bundle["telemetry"]["spans"]
        assert bundle["query_log"]["records"]
        assert bundle["query_log"]["profiles"]
        assert bundle["plan_cache"] and bundle["epochs"]
        assert bundle["shards"] == {"configured": 4}

    def test_empty_query_log_section_still_validates(self, registry, tracer):
        validate_bundle(build_bundle(registry=registry, tracer=tracer))


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self, bundle):
        text = bundle_to_json(bundle)
        assert from_bundle(text) == json.loads(text)

    def test_from_bundle_accepts_a_parsed_dict(self, bundle):
        assert from_bundle(bundle) is bundle


class TestValidation:
    def test_missing_section_reported_by_name(self, bundle):
        del bundle["query_log"]
        with pytest.raises(ValueError, match="query_log"):
            validate_bundle(bundle)

    def test_wrong_section_type_reported(self, bundle):
        bundle["plan_cache"] = {}
        with pytest.raises(ValueError, match="plan_cache"):
            validate_bundle(bundle)

    def test_unsupported_schema_version_rejected(self, bundle):
        bundle["schema_version"] = BUNDLE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            validate_bundle(bundle)

    def test_every_problem_listed_at_once(self):
        with pytest.raises(ValueError) as excinfo:
            validate_bundle({"schema_version": 1})
        message = str(excinfo.value)
        for key in ("telemetry", "query_log", "plan_cache", "epochs",
                    "shards", "env"):
            assert key in message

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            validate_bundle([])


class TestEnv:
    def test_only_repro_knobs_collected(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_LOG", "1")
        monkeypatch.setenv("UNRELATED", "x")
        env = collect_env()
        assert env["REPRO_QUERY_LOG"] == "1"
        assert all(key.startswith("REPRO_") for key in env)
