"""Scalar codecs: text, bytes, bool, float."""

import hypothesis.strategies as st
from hypothesis import given

from repro.storage.encoding import (
    decode_bool,
    decode_bytes,
    decode_float,
    decode_text,
    encode_bool,
    encode_bytes,
    encode_float,
    encode_text,
)


class TestText:
    def test_round_trip(self):
        value, offset = decode_text(encode_text("Fenian St"))
        assert value == "Fenian St"

    def test_empty_string(self):
        assert decode_text(encode_text(""))[0] == ""

    def test_unicode(self):
        text = "Dún Laoghaire — ∆ 100µg/m³"
        assert decode_text(encode_text(text))[0] == text

    def test_offset_advances_past_value(self):
        encoded = encode_text("ab") + encode_text("cd")
        first, offset = decode_text(encoded)
        second, end = decode_text(encoded, offset)
        assert (first, second) == ("ab", "cd")
        assert end == len(encoded)

    @given(st.text(max_size=200))
    def test_round_trip_any(self, text):
        assert decode_text(encode_text(text))[0] == text


class TestBytes:
    @given(st.binary(max_size=200))
    def test_round_trip(self, raw):
        assert decode_bytes(encode_bytes(raw))[0] == raw


class TestBool:
    def test_true_false(self):
        assert decode_bool(encode_bool(True))[0] is True
        assert decode_bool(encode_bool(False))[0] is False

    def test_one_byte(self):
        assert len(encode_bool(True)) == 1


class TestFloat:
    def test_round_trip(self):
        assert decode_float(encode_float(3.25))[0] == 3.25

    @given(st.floats(allow_nan=False))
    def test_round_trip_any(self, value):
        assert decode_float(encode_float(value))[0] == value

    def test_eight_bytes(self):
        assert len(encode_float(1.0)) == 8
