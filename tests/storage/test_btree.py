"""B-tree invariants: ordering, splits, deletes, page accounting."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.storage.btree import BTree, encode_key


class TestBasics:
    def test_insert_and_get(self):
        tree = BTree()
        tree.insert(5, b"five")
        assert tree.get(5) == b"five"
        assert tree.get(6) is None

    def test_get_default(self):
        assert BTree().get(1, b"dflt") == b"dflt"

    def test_overwrite_same_key(self):
        tree = BTree()
        tree.insert(1, b"a")
        tree.insert(1, b"b")
        assert tree.get(1) == b"b"
        assert len(tree) == 1

    def test_contains(self):
        tree = BTree()
        tree.insert("k", None)
        assert "k" in tree
        assert "x" not in tree

    def test_value_may_be_none(self):
        tree = BTree()
        tree.insert(("v", 1))
        assert ("v", 1) in tree
        assert tree.get(("v", 1)) is None


class TestOrderingAndSplits:
    def test_items_sorted_after_random_inserts(self):
        tree = BTree(page_capacity=8)
        import random

        rng = random.Random(7)
        keys = list(range(500))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, str(key).encode())
        assert [k for k, _ in tree.items()] == list(range(500))
        assert len(tree) == 500

    def test_range_scan(self):
        tree = BTree(page_capacity=4)
        for key in range(100):
            tree.insert(key)
        assert list(tree.keys(lo=10, hi=15)) == [10, 11, 12, 13, 14, 15]

    def test_range_scan_open_start(self):
        tree = BTree(page_capacity=4)
        for key in range(20):
            tree.insert(key)
        assert list(tree.keys(hi=3)) == [0, 1, 2, 3]

    def test_range_scan_missing_bounds(self):
        tree = BTree(page_capacity=4)
        for key in (1, 3, 5, 7, 9, 11):
            tree.insert(key)
        assert list(tree.keys(lo=2, hi=8)) == [3, 5, 7]

    def test_page_counts_grow(self):
        tree = BTree(page_capacity=4)
        for key in range(100):
            tree.insert(key)
        leaves, internals = tree.page_counts
        assert leaves > 10
        assert internals >= 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BTree(page_capacity=2)


class TestDelete:
    def test_delete_present(self):
        tree = BTree(page_capacity=4)
        for key in range(50):
            tree.insert(key)
        assert tree.delete(25)
        assert 25 not in tree
        assert len(tree) == 49
        assert 25 not in list(tree.keys())

    def test_delete_absent(self):
        tree = BTree()
        tree.insert(1)
        assert not tree.delete(99)
        assert len(tree) == 1


class TestSizeAccounting:
    def test_size_grows_with_entries(self):
        tree = BTree()
        empty = tree.size_bytes
        for key in range(1000):
            tree.insert(key, b"x" * 20)
        assert tree.size_bytes > empty + 1000 * 20

    def test_write_through_keeps_pages_encoded(self):
        tree = BTree(page_capacity=8, write_through=True)
        for key in range(100):
            tree.insert(key, b"v")
        # no flush needed: every leaf already encoded
        leaf = tree._first_leaf
        while leaf is not None:
            assert not leaf.dirty
            leaf = leaf.next

    def test_lazy_mode_dirty_until_flush(self):
        tree = BTree(page_capacity=8)
        tree.insert(1, b"v")
        assert tree._first_leaf.dirty
        tree.flush()
        assert not tree._first_leaf.dirty


class TestEncodeKey:
    @pytest.mark.parametrize(
        "key", [None, True, False, 0, -17, 2 ** 40, "text", b"raw", (1, "a"), ((1, 2), "b")]
    )
    def test_supported_types(self, key):
        assert isinstance(encode_key(key), bytes)

    def test_bool_distinct_from_int(self):
        assert encode_key(True) != encode_key(1)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            encode_key(object())


class TestPropertyVsDict:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "del"]),
                st.integers(min_value=0, max_value=60),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_dict(self, ops):
        tree = BTree(page_capacity=4)
        reference = {}
        for op, key in ops:
            if op == "put":
                tree.insert(key, str(key).encode())
                reference[key] = str(key).encode()
            else:
                tree.delete(key)
                reference.pop(key, None)
        assert dict(tree.items()) == reference
        assert [k for k, _ in tree.items()] == sorted(reference)
        assert len(tree) == len(reference)
