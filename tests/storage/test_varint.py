"""Varint and zigzag coding."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.storage.varint import decode_varint, encode_varint, zigzag_decode, zigzag_encode


class TestZigzag:
    @pytest.mark.parametrize(
        "value,expected", [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)]
    )
    def test_known_mapping(self, value, expected):
        assert zigzag_encode(value) == expected

    def test_round_trip_small(self):
        for value in range(-300, 300):
            assert zigzag_decode(zigzag_encode(value)) == value

    @given(st.integers())
    def test_round_trip_any_int(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value


class TestVarint:
    def test_single_byte_values(self):
        assert encode_varint(0) == b"\x00"
        assert len(encode_varint(63)) == 1
        assert len(encode_varint(-64)) == 1

    def test_multi_byte_boundaries(self):
        assert len(encode_varint(64)) == 2
        assert len(encode_varint(8191)) == 2
        assert len(encode_varint(8192)) == 3

    def test_decode_with_offset(self):
        buffer = b"\xff" + encode_varint(1234)
        value, offset = decode_varint(buffer, 1)
        assert value == 1234
        assert offset == len(buffer)

    def test_concatenated_stream(self):
        values = [0, -5, 100, 99999, -123456789]
        buffer = b"".join(encode_varint(v) for v in values)
        offset = 0
        decoded = []
        while offset < len(buffer):
            value, offset = decode_varint(buffer, offset)
            decoded.append(value)
        assert decoded == values

    @given(st.integers(min_value=-(2 ** 70), max_value=2 ** 70))
    def test_round_trip(self, value):
        assert decode_varint(encode_varint(value))[0] == value

    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_cache_and_slow_path_agree(self, value):
        # force the slow path by reimplementing it
        from repro.storage.varint import _encode_uvarint, zigzag_encode

        assert encode_varint(value) == _encode_uvarint(zigzag_encode(value))
