"""JSON record extraction."""

import json

import pytest

from repro.core.errors import PipelineError
from repro.etl.documents import SourceDocument
from repro.etl.json_source import parse_json_records

FEED = {
    "timestamp": "2015-06-01T08:00:00",
    "data": {
        "stations": [
            {"name": "Fenian St", "available_bikes": 3, "geo": {"lat": 53.3, "lon": -6.2}},
            {"name": "Portobello", "available_bikes": 5},
        ]
    },
}


def doc(payload=None):
    return SourceDocument(json.dumps(payload or FEED), "json", source="test")


class TestParse:
    def test_dotted_path(self):
        records = list(parse_json_records(doc(), "data.stations"))
        assert [r["name"] for r in records] == ["Fenian St", "Portobello"]

    def test_context_fields(self):
        records = list(parse_json_records(doc(), "data.stations", context_fields=("timestamp",)))
        assert records[0]["timestamp"] == "2015-06-01T08:00:00"

    def test_nested_objects_flattened_one_level(self):
        records = list(parse_json_records(doc(), "data.stations"))
        assert records[0]["geo.lat"] == 53.3

    def test_top_level_array(self):
        payload = [{"a": 1}, {"a": 2}]
        records = list(parse_json_records(doc(payload), ""))
        assert len(records) == 2

    def test_values_keep_types(self):
        records = list(parse_json_records(doc(), "data.stations"))
        assert isinstance(records[0]["available_bikes"], int)


class TestErrors:
    def test_bad_path(self):
        with pytest.raises(PipelineError, match="not found"):
            list(parse_json_records(doc(), "data.nope"))

    def test_path_to_non_array(self):
        with pytest.raises(PipelineError, match="not an array"):
            list(parse_json_records(doc(), "data"))

    def test_malformed_json(self):
        with pytest.raises(PipelineError, match="malformed JSON"):
            list(parse_json_records(SourceDocument("{oops", "json"), ""))

    def test_non_object_records(self):
        with pytest.raises(PipelineError):
            list(parse_json_records(doc([1, 2, 3]), ""))

    def test_wrong_content_type(self):
        with pytest.raises(PipelineError):
            list(parse_json_records(SourceDocument("<x/>", "xml"), ""))
