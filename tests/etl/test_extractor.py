"""FactMapping: record → fact tuple extraction."""

import pytest

from repro.core.errors import PipelineError
from repro.core.schema import CubeSchema
from repro.etl.extractor import FactMapping


@pytest.fixture
def schema():
    return CubeSchema("c", ["station", "hour"], measure="bikes")


def make_mapping(schema, **kwargs):
    return FactMapping(
        schema,
        dimension_fields={
            "station": "name",
            "hour": lambda r: int(str(r["ts"])[11:13]),
        },
        measure_field="available",
        **kwargs,
    )


GOOD = {"name": "Fenian St", "ts": "2015-06-01T08:30:00", "available": "3"}


class TestExtraction:
    def test_field_and_callable_specs(self, schema):
        fact = make_mapping(schema).extract_one(GOOD)
        assert fact.keys == ("Fenian St", 8)
        assert fact.measure == 3

    def test_measure_cast(self, schema):
        mapping = make_mapping(schema)
        mapping.measure_cast = float
        assert mapping.extract_one(GOOD).measure == 3.0

    def test_extract_many(self, schema):
        facts = make_mapping(schema).extract([GOOD, dict(GOOD, name="Other")])
        assert len(facts) == 2
        assert facts.schema is schema


class TestValidation:
    def test_missing_dimension_mapping_rejected(self, schema):
        with pytest.raises(PipelineError, match="no field mapping"):
            FactMapping(schema, {"station": "name"}, "available")

    def test_unknown_dimension_mapping_rejected(self, schema):
        with pytest.raises(PipelineError, match="unknown dimensions"):
            FactMapping(
                schema,
                {"station": "name", "hour": "h", "bogus": "x"},
                "available",
            )

    def test_bad_on_missing_rejected(self, schema):
        with pytest.raises(PipelineError):
            make_mapping(schema, on_missing="ignore")


class TestMissingFields:
    def test_error_mode_raises(self, schema):
        with pytest.raises(PipelineError, match="cannot extract"):
            make_mapping(schema).extract_one({"ts": GOOD["ts"], "available": 1})

    def test_skip_mode_drops_and_counts(self, schema):
        mapping = make_mapping(schema, on_missing="skip")
        facts = mapping.extract([GOOD, {"available": 1}, {"name": "x", "ts": "bad", "available": 1}])
        assert len(facts) == 1
        assert mapping.n_skipped == 2

    def test_null_field_treated_as_missing(self, schema):
        mapping = make_mapping(schema, on_missing="skip")
        assert mapping.extract_one(dict(GOOD, name=None)) is None

    def test_uncastable_measure(self, schema):
        mapping = make_mapping(schema, on_missing="skip")
        assert mapping.extract_one(dict(GOOD, available="many")) is None
