"""XML record extraction."""

import pytest

from repro.core.errors import PipelineError
from repro.etl.documents import SourceDocument
from repro.etl.xml_source import count_xml_records, parse_xml_records

FEED = """<?xml version="1.0"?>
<stations timestamp="2015-06-01T08:00:00" city="Dublin">
  <station id="1"><name>Fenian St</name><available_bikes>3</available_bikes></station>
  <station id="2"><name>Portobello</name><available_bikes>5</available_bikes></station>
</stations>
"""


def doc(content=FEED):
    return SourceDocument(content, "xml", source="test")


class TestParse:
    def test_records_extracted(self):
        records = list(parse_xml_records(doc(), "station"))
        assert len(records) == 2
        assert records[0]["name"] == "Fenian St"
        assert records[1]["available_bikes"] == "5"

    def test_attributes_become_fields(self):
        records = list(parse_xml_records(doc(), "station"))
        assert records[0]["id"] == "1"

    def test_context_fields_from_root_attributes(self):
        records = list(parse_xml_records(doc(), "station", context_fields=("timestamp",)))
        assert all(r["timestamp"] == "2015-06-01T08:00:00" for r in records)

    def test_context_fields_from_root_children(self):
        xml = "<feed><meta>hello</meta><r><v>1</v></r></feed>"
        records = list(parse_xml_records(doc(xml), "r", context_fields=("meta",)))
        assert records[0]["meta"] == "hello"

    def test_missing_context_field_skipped(self):
        records = list(parse_xml_records(doc(), "station", context_fields=("nope",)))
        assert "nope" not in records[0]

    def test_no_matching_tag(self):
        assert list(parse_xml_records(doc(), "bus")) == []

    def test_nested_containers_not_flattened(self):
        xml = "<f><r><a>1</a><sub><b>2</b></sub></r></f>"
        record = next(parse_xml_records(doc(xml), "r"))
        assert record["a"] == "1"
        assert "sub" not in record  # non-leaf children skipped

    def test_whitespace_stripped(self):
        xml = "<f><r><a>  x </a></r></f>"
        assert next(parse_xml_records(doc(xml), "r"))["a"] == "x"


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(PipelineError, match="malformed XML"):
            list(parse_xml_records(doc("<oops"), "r"))

    def test_wrong_content_type(self):
        with pytest.raises(PipelineError):
            list(parse_xml_records(SourceDocument("{}", "json"), "r"))


def test_count_records():
    assert count_xml_records(doc(), "station") == 2
