"""Stream windowing and document batches."""

import pytest

from repro.etl.documents import DocumentBatch, SourceDocument
from repro.etl.stream import DocumentStream, window_by_count, window_by_period


def docs(n):
    return [SourceDocument(f"<d>{i}</d>", "xml", sequence=i) for i in range(n)]


class TestDocumentBatch:
    def test_size_accounting(self):
        batch = DocumentBatch(docs(3))
        assert batch.size_bytes == sum(d.size_bytes for d in batch)
        assert batch.size_mb == batch.size_bytes / (1024 * 1024)

    def test_append(self):
        batch = DocumentBatch()
        batch.append(docs(1)[0])
        assert len(batch) == 1

    def test_bad_content_type_rejected(self):
        with pytest.raises(ValueError):
            SourceDocument("x", "csv")


class TestWindowByCount:
    def test_even_split(self):
        windows = list(window_by_count(docs(6), 2))
        assert [len(w) for w in windows] == [2, 2, 2]

    def test_remainder_window(self):
        windows = list(window_by_count(docs(5), 2))
        assert [len(w) for w in windows] == [2, 2, 1]

    def test_preserves_order(self):
        windows = list(window_by_count(docs(4), 3))
        sequences = [d.sequence for w in windows for d in w]
        assert sequences == [0, 1, 2, 3]

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(window_by_count(docs(1), 0))


class TestWindowByPeriod:
    def test_splits_on_period_change(self):
        stream = docs(6)
        windows = list(window_by_period(stream, lambda d: d.sequence // 2))
        assert [len(w) for w in windows] == [2, 2, 2]

    def test_uneven_periods(self):
        stream = docs(5)
        windows = list(window_by_period(stream, lambda d: 0 if d.sequence < 4 else 1))
        assert [len(w) for w in windows] == [4, 1]

    def test_empty_stream(self):
        assert list(window_by_period([], lambda d: 0)) == []


class TestDocumentStream:
    def test_replayable(self):
        stream = DocumentStream(docs(3))
        assert len(list(stream)) == 3
        assert len(list(stream)) == 3

    def test_batch(self):
        assert len(DocumentStream(docs(3)).batch()) == 3
