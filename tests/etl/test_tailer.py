"""Micro-batch feed tailing: bounded batches, watermarks, resumability."""

import pytest

from repro.etl.documents import DocumentBatch, SourceDocument
from repro.etl.stream import DocumentStream, FeedTailer, resolve_ingest_batch


def docs(n, start=0):
    return [
        SourceDocument(f"<d>{i}</d>", "xml", sequence=i)
        for i in range(start, start + n)
    ]


class TestResolveIngestBatch:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_INGEST_BATCH", "7")
        assert resolve_ingest_batch(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_INGEST_BATCH", "9")
        assert resolve_ingest_batch() == 9

    def test_default_and_garbage(self, monkeypatch):
        monkeypatch.delenv("REPRO_INGEST_BATCH", raising=False)
        assert resolve_ingest_batch() == 64
        monkeypatch.setenv("REPRO_INGEST_BATCH", "banana")
        assert resolve_ingest_batch() == 64

    def test_floor_of_one(self):
        assert resolve_ingest_batch(0) == 1
        assert resolve_ingest_batch(-5) == 1


class TestFeedTailer:
    def test_bounded_batches_cover_stream_in_order(self):
        tailer = FeedTailer(DocumentStream(docs(7)), batch_size=3)
        batches = list(tailer)
        assert [len(b) for b in batches] == [3, 3, 1]
        assert [b.index for b in batches] == [0, 1, 2]
        assert [(b.start_offset, b.end_offset) for b in batches] == [
            (0, 3), (3, 6), (6, 7),
        ]
        sequences = [d.sequence for b in batches for d in b]
        assert sequences == list(range(7))

    def test_poll_returns_none_when_caught_up(self):
        tailer = FeedTailer(DocumentStream(docs(2)), batch_size=5)
        assert tailer.poll() is not None
        assert tailer.poll() is None
        assert tailer.lag == 0

    def test_watermark_advances_with_sequences(self):
        tailer = FeedTailer(DocumentStream(docs(4)), batch_size=2)
        assert tailer.watermark == -1
        assert tailer.poll().watermark == 1
        assert tailer.poll().watermark == 3
        assert tailer.watermark == 3

    def test_growing_stream_makes_poll_productive_again(self):
        stream = DocumentStream(docs(2))
        tailer = FeedTailer(stream, batch_size=2)
        assert tailer.poll() is not None
        assert tailer.poll() is None
        stream.extend(docs(3, start=2))
        batch = tailer.poll()
        assert [d.sequence for d in batch] == [2, 3]
        assert tailer.lag == 1

    def test_offset_resumes_a_previous_tail(self):
        stream = DocumentStream(docs(6))
        first = FeedTailer(stream, batch_size=2)
        first.poll()
        resumed = FeedTailer(stream, batch_size=2, offset=first.offset)
        assert [d.sequence for d in resumed.poll()] == [2, 3]

    def test_seek_repositions(self):
        tailer = FeedTailer(DocumentStream(docs(4)), batch_size=10)
        tailer.poll()
        tailer.seek(1)
        assert [d.sequence for d in tailer.poll()] == [1, 2, 3]

    def test_negative_offsets_rejected(self):
        with pytest.raises(ValueError):
            FeedTailer(DocumentStream(docs(1)), offset=-1)
        tailer = FeedTailer(DocumentStream(docs(1)))
        with pytest.raises(ValueError):
            tailer.seek(-2)

    def test_accepts_plain_document_containers(self):
        batch = DocumentBatch(docs(3))
        tailer = FeedTailer(batch, batch_size=2)
        assert [len(b) for b in tailer] == [2, 1]
