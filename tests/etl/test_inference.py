"""Schema inference from raw records."""

import pytest

from repro.core.errors import PipelineError
from repro.dwarf.builder import build_cube
from repro.etl.inference import infer_mapping, profile_records


RECORDS = [
    {"station": f"s{i % 5}", "district": f"d{i % 2}", "bikes": i % 7, "status": "OPEN"}
    for i in range(40)
]


class TestProfiling:
    def test_presence_and_cardinality(self):
        profiles, count = profile_records(RECORDS)
        assert count == 40
        by_name = {p.name: p for p in profiles}
        assert by_name["station"].cardinality == 5
        assert by_name["district"].cardinality == 2
        assert by_name["bikes"].numeric
        assert not by_name["status"].numeric

    def test_none_values_ignored(self):
        profiles, _ = profile_records([{"a": None, "b": 1}])
        assert [p.name for p in profiles] == ["b"]

    def test_numeric_strings_detected(self):
        profiles, _ = profile_records([{"n": "42"}, {"n": "7.5"}])
        assert profiles[0].numeric


class TestInference:
    def test_measure_and_dimensions_chosen(self):
        mapping = infer_mapping(RECORDS, name="bikes")
        assert mapping.schema.measure == "bikes"
        assert set(mapping.schema.dimension_names) == {"station", "district", "status"}

    def test_dimensions_ordered_by_cardinality(self):
        mapping = infer_mapping(RECORDS)
        assert mapping.schema.dimension_names[0] == "station"  # 5 > 2 > 1

    def test_explicit_measure(self):
        records = [{"a": i, "b": i * 2, "k": "x"} for i in range(10)]
        mapping = infer_mapping(records, measure="a")
        assert mapping.schema.measure == "a"
        # b becomes a dimension even though numeric
        assert "b" in mapping.schema.dimension_names

    def test_explicit_measure_missing(self):
        with pytest.raises(PipelineError, match="not found"):
            infer_mapping(RECORDS, measure="nope")

    def test_non_numeric_measure_rejected(self):
        with pytest.raises(PipelineError, match="not numeric"):
            infer_mapping(RECORDS, measure="status")

    def test_cardinality_cap(self):
        records = [{"id": i, "group": f"g{i % 3}", "v": i} for i in range(50)]
        mapping = infer_mapping(records, max_dimension_cardinality=10)
        assert "id" not in mapping.schema.dimension_names
        assert "group" in mapping.schema.dimension_names

    def test_max_dimensions(self):
        records = [
            {f"d{j}": f"v{i % (j + 2)}" for j in range(12)} | {"m": i}
            for i in range(30)
        ]
        mapping = infer_mapping(records, max_dimensions=4)
        assert len(mapping.schema.dimension_names) == 4

    def test_sparse_fields_dropped(self):
        records = [{"a": "x", "m": 1}] * 20 + [{"a": "x", "m": 1, "rare": "y"}]
        mapping = infer_mapping(records)
        assert "rare" not in mapping.schema.dimension_names

    def test_no_records(self):
        with pytest.raises(PipelineError):
            infer_mapping([])

    def test_no_numeric_field(self):
        with pytest.raises(PipelineError, match="numeric"):
            infer_mapping([{"a": "x"}] * 5)

    def test_float_measure_cast(self):
        records = [{"k": "a", "v": "1.5"}, {"k": "b", "v": "2.5"}]
        mapping = infer_mapping(records)
        facts = mapping.extract(records)
        assert facts[0].measure == 1.5


class TestEndToEnd:
    def test_inferred_cube_from_real_feed(self):
        """Infer a cube for the air-quality JSON feed with zero wiring."""
        from repro.etl.json_source import parse_json_records
        from repro.smartcity.airquality import AirQualityFeedGenerator

        documents = AirQualityFeedGenerator(n_sensors=3).generate_documents(
            days=1, snapshots_per_day=3
        )
        records = [
            record
            for document in documents
            for record in parse_json_records(document, "readings")
        ]
        mapping = infer_mapping(records, name="air", max_dimension_cardinality=50)
        facts = mapping.extract(records)
        assert len(facts) == len(records)
        cube = build_cube(facts)
        assert cube.total() == pytest.approx(sum(f.measure for f in facts))
        assert "pollutant" in cube.schema.dimension_names
