"""EtlPipeline: documents through to tuple sets."""

import json

import pytest

from repro.core.errors import PipelineError
from repro.core.schema import CubeSchema
from repro.etl.documents import SourceDocument
from repro.etl.extractor import FactMapping
from repro.etl.pipeline import EtlPipeline


@pytest.fixture
def pipeline():
    schema = CubeSchema("c", ["name"], measure="v")
    mapping = FactMapping(schema, {"name": "name"}, "v", measure_cast=int)
    return EtlPipeline(mapping, record_tag="r", records_path="rows")


XML_DOC = SourceDocument("<f><r><name>a</name><v>1</v></r></f>", "xml")
JSON_DOC = SourceDocument(json.dumps({"rows": [{"name": "b", "v": 2}]}), "json")


class TestDispatch:
    def test_xml_and_json_mixed(self, pipeline):
        facts = pipeline.extract([XML_DOC, JSON_DOC])
        assert sorted(f.as_row() for f in facts) == [("a", 1), ("b", 2)]

    def test_counters(self, pipeline):
        pipeline.extract([XML_DOC, JSON_DOC])
        assert pipeline.n_documents == 2
        assert pipeline.n_records == 2

    def test_records_dispatch_xml(self, pipeline):
        assert list(pipeline.records(XML_DOC)) == [{"name": "a", "v": "1"}]

    def test_records_dispatch_json(self, pipeline):
        assert list(pipeline.records(JSON_DOC)) == [{"name": "b", "v": 2}]

    def test_empty_documents(self, pipeline):
        assert len(pipeline.extract([])) == 0
