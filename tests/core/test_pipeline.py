"""CubeConstructionPipeline: the full documents → storage → reload loop."""

import pytest

from repro.core.errors import PipelineError
from repro.core.pipeline import CubeConstructionPipeline
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.smartcity.bikes import BikeFeedGenerator, bikes_pipeline


@pytest.fixture
def generator():
    return BikeFeedGenerator(n_stations=12)


@pytest.fixture
def pipeline():
    return CubeConstructionPipeline(bikes_pipeline(), NoSQLDwarfMapper())


class TestBuild:
    def test_build_in_memory(self, generator):
        pipeline = CubeConstructionPipeline(bikes_pipeline())
        cube = pipeline.build(generator.generate_documents(days=1, total_records=60))
        assert cube.n_source_tuples == 60
        assert pipeline.last_cube is cube

    def test_empty_documents_rejected(self):
        pipeline = CubeConstructionPipeline(bikes_pipeline())
        with pytest.raises(PipelineError, match="no fact tuples"):
            pipeline.build([])


class TestRunAndReload:
    def test_report_fields(self, pipeline, generator):
        report = pipeline.run(generator.generate_documents(days=1, total_records=48))
        assert report.n_documents == 4
        assert report.n_records == 48
        assert report.n_facts == 48
        assert report.schema_id == 1
        assert report.n_nodes > 0 and report.n_cells > report.n_nodes
        assert report.stored_mb is not None

    def test_reload_equals_memory(self, pipeline, generator):
        report = pipeline.run(generator.generate_documents(days=1, total_records=48))
        rebuilt = pipeline.reload(report.schema_id)
        assert sorted(rebuilt.leaves()) == sorted(pipeline.last_cube.leaves())

    def test_reload_without_mapper(self, generator):
        pipeline = CubeConstructionPipeline(bikes_pipeline())
        pipeline.build(generator.generate_documents(days=1, total_records=24))
        with pytest.raises(PipelineError, match="no mapper"):
            pipeline.reload(1)

    def test_memory_only_report(self, generator):
        pipeline = CubeConstructionPipeline(bikes_pipeline())
        report = pipeline.run(generator.generate_documents(days=1, total_records=24))
        assert report.schema_id is None
        assert report.stored_mb is None

    def test_two_runs_two_ids(self, pipeline, generator):
        first = pipeline.run(generator.generate_documents(days=1, total_records=24))
        second = pipeline.run(generator.generate_documents(days=1, total_records=24))
        assert (first.schema_id, second.schema_id) == (1, 2)


class TestIncrementalUpdate:
    def test_update_merges_delta(self, generator):
        pipeline = CubeConstructionPipeline(bikes_pipeline())
        docs = list(generator.generate_documents(days=2, total_records=96))
        pipeline.build(docs[:4])
        merged = pipeline.update(docs[4:])
        assert merged.n_source_tuples == 96
        assert pipeline.last_cube is merged

    def test_update_without_standing_cube_builds(self, generator):
        pipeline = CubeConstructionPipeline(bikes_pipeline())
        cube = pipeline.update(generator.generate_documents(days=1, total_records=24))
        assert cube.n_source_tuples == 24

    def test_update_equals_full_rebuild(self, generator):
        docs = list(generator.generate_documents(days=2, total_records=96))
        incremental = CubeConstructionPipeline(bikes_pipeline())
        incremental.build(docs[:3])
        incremental.update(docs[3:6])
        incremental.update(docs[6:])
        full = CubeConstructionPipeline(bikes_pipeline()).build(docs)
        assert sorted(incremental.last_cube.leaves()) == sorted(full.leaves())

    def test_empty_update_keeps_cube(self, generator):
        pipeline = CubeConstructionPipeline(bikes_pipeline())
        cube = pipeline.build(generator.generate_documents(days=1, total_records=24))
        assert pipeline.update([]) is cube
