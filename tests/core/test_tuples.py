"""FactTuple / TupleSet behaviour: validation, sorting, iteration."""

import pytest

from repro.core.errors import TupleShapeError
from repro.core.schema import CubeSchema
from repro.core.tuples import FactTuple, TupleSet


@pytest.fixture
def schema():
    return CubeSchema("c", ["country", "city"])


class TestFactTuple:
    def test_from_row(self):
        fact = FactTuple.from_row(("IE", "Dublin", 5))
        assert fact.keys == ("IE", "Dublin")
        assert fact.measure == 5

    def test_as_row_round_trips(self):
        row = ("IE", "Dublin", 5)
        assert FactTuple.from_row(row).as_row() == row

    def test_too_short_row_rejected(self):
        with pytest.raises(TupleShapeError):
            FactTuple.from_row((5,))

    def test_equality_and_hash(self):
        a = FactTuple(("IE",), 1)
        assert a == FactTuple(("IE",), 1)
        assert a != FactTuple(("IE",), 2)
        assert hash(a) == hash(FactTuple(("IE",), 1))


class TestTupleSet:
    def test_append_rows_and_facts(self, schema):
        ts = TupleSet(schema)
        ts.append(("IE", "Dublin", 5))
        ts.append(FactTuple(("FR", "Paris"), 2))
        assert len(ts) == 2

    def test_wrong_arity_rejected(self, schema):
        ts = TupleSet(schema)
        with pytest.raises(TupleShapeError, match="expects 2 dimensions"):
            ts.append(("IE", "Dublin", "extra", 5))

    def test_rows_iteration(self, schema):
        ts = TupleSet(schema, [("IE", "Dublin", 5)])
        assert list(ts.rows()) == [("IE", "Dublin", 5)]

    def test_sorted_orders_by_dimensions(self, schema):
        ts = TupleSet(schema, [("IE", "Dublin", 1), ("FR", "Paris", 2), ("IE", "Cork", 3)])
        ordered = ts.sorted()
        assert [f.keys for f in ordered] == [
            ("FR", "Paris"), ("IE", "Cork"), ("IE", "Dublin"),
        ]

    def test_sorted_leaves_original_untouched(self, schema):
        ts = TupleSet(schema, [("IE", "Dublin", 1), ("FR", "Paris", 2)])
        ts.sorted()
        assert ts[0].keys == ("IE", "Dublin")

    def test_is_sorted(self, schema):
        assert TupleSet(schema, [("A", "a", 1), ("B", "b", 1)]).is_sorted()
        assert not TupleSet(schema, [("B", "b", 1), ("A", "a", 1)]).is_sorted()

    def test_mixed_type_keys_sort_deterministically(self):
        schema = CubeSchema("c", ["k"])
        ts = TupleSet(schema, [(3, 1), ("a", 1), (1, 1), ("b", 1)])
        ordered = [f.keys[0] for f in ts.sorted()]
        assert ordered == [1, 3, "a", "b"]  # ints (by type name) before strs

    def test_getitem(self, schema):
        ts = TupleSet(schema, [("IE", "Dublin", 5)])
        assert ts[0].measure == 5

    def test_empty_is_sorted(self, schema):
        assert TupleSet(schema).is_sorted()
