"""Aggregator semantics: lift/merge/finalize and the registry."""

import pytest

from repro.core.aggregators import AVG, COUNT, MAX, MIN, SUM, Aggregator
from repro.core.errors import SchemaError


class TestSum:
    def test_aggregate(self):
        assert SUM.aggregate([1, 2, 3]) == 6

    def test_single_value(self):
        assert SUM.aggregate([7]) == 7

    def test_merge_is_addition(self):
        assert SUM.merge(SUM.lift(4), SUM.lift(5)) == 9

    def test_floats(self):
        assert SUM.aggregate([1.5, 2.5]) == 4.0


class TestCount:
    def test_counts_items_not_values(self):
        assert COUNT.aggregate([10, 20, 30]) == 3

    def test_lift_is_one(self):
        assert COUNT.lift(999) == 1


class TestMinMax:
    def test_min(self):
        assert MIN.aggregate([5, 2, 9]) == 2

    def test_max(self):
        assert MAX.aggregate([5, 2, 9]) == 9

    def test_min_equal_values(self):
        assert MIN.merge(3, 3) == 3


class TestAvg:
    def test_aggregate(self):
        assert AVG.aggregate([2, 4, 6]) == 4.0

    def test_state_is_total_count(self):
        state = AVG.merge(AVG.lift(10), AVG.lift(20))
        assert state == (30, 2)
        assert AVG.finalize(state) == 15.0

    def test_merge_is_weighted(self):
        # (10, 20) merged with (40,) — not the mean of means.
        left = AVG.merge(AVG.lift(10), AVG.lift(20))
        merged = AVG.merge(left, AVG.lift(40))
        assert AVG.finalize(merged) == pytest.approx(70 / 3)


class TestRegistry:
    def test_lookup_by_name(self):
        assert Aggregator.get("sum") is SUM
        assert Aggregator.get("AVG") is AVG

    def test_unknown_name_raises(self):
        with pytest.raises(SchemaError, match="unknown aggregator"):
            Aggregator.get("median")

    def test_names_listed(self):
        assert set(Aggregator.names()) >= {"sum", "count", "min", "max", "avg"}

    def test_empty_aggregate_raises(self):
        with pytest.raises(SchemaError, match="zero measures"):
            SUM.aggregate([])


class TestDecomposability:
    """merge(agg(a), agg(b)) must equal agg(a + b) — what SuffixCoalesce needs."""

    @pytest.mark.parametrize("agg", [SUM, COUNT, MIN, MAX, AVG], ids=lambda a: a.name)
    def test_split_merge_equals_whole(self, agg):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        whole = agg.aggregate(values)
        left = values[:3]
        right = values[3:]

        def state_of(chunk):
            state = agg.lift(chunk[0])
            for value in chunk[1:]:
                state = agg.merge(state, agg.lift(value))
            return state

        combined = agg.finalize(agg.merge(state_of(left), state_of(right)))
        assert combined == whole
