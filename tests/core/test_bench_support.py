"""The benchmark support package: datasets, runner, reporting."""

import pytest

from repro.bench.datasets import (
    DATASETS,
    DATASETS_BY_NAME,
    clear_cache,
    current_scale,
    load_dataset,
    scaled_days,
    scaled_tuples,
)
from repro.bench.reporting import format_table, paper_vs_measured, shape_check
from repro.bench.runner import (
    DATASET_ORDER,
    PAPER_TABLE4_MB,
    PAPER_TABLE5_MS,
    run_cell,
)


class TestDatasets:
    def test_paper_table2_values(self):
        assert DATASETS_BY_NAME["Day"].paper_tuples == 7_358
        assert DATASETS_BY_NAME["SMonth"].paper_tuples == 1_181_344
        assert [s.name for s in DATASETS] == list(DATASET_ORDER)

    def test_scaled_tuples(self):
        spec = DATASETS_BY_NAME["Week"]
        assert scaled_tuples(spec, scale=1.0) == 60_102
        assert scaled_tuples(spec, scale=0.5) == 30_051
        assert scaled_tuples(spec, scale=1e-9) == 1

    def test_scaled_days_keeps_density(self):
        spec = DATASETS_BY_NAME["SMonth"]
        assert scaled_days(spec, scale=1.0) == 183
        assert scaled_days(spec, scale=1 / 16) == 12

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert current_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ValueError):
            current_scale()

    def test_load_dataset_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        clear_cache()
        first = load_dataset("Day")
        second = load_dataset("Day")
        assert first is second
        assert first.n_tuples == round(7358 * 0.002)
        clear_cache()

    def test_bundle_consistency(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        clear_cache()
        bundle = load_dataset("Week")
        assert bundle.cube.n_source_tuples == bundle.n_tuples
        assert bundle.spec.name == "Week"
        clear_cache()


class TestRunner:
    def test_paper_constants_complete(self):
        for table in (PAPER_TABLE4_MB, PAPER_TABLE5_MS):
            assert set(table) == {"MySQL-DWARF", "MySQL-Min", "NoSQL-DWARF", "NoSQL-Min"}
            assert all(len(v) == 5 for v in table.values())

    def test_run_cell(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        clear_cache()
        result = run_cell("NoSQL-DWARF", "Day")
        assert result.schema == "NoSQL-DWARF"
        assert result.n_tuples == round(7358 * 0.002)
        assert result.insert_ms > 0
        assert result.size_mb > 0
        assert result.cell_count > result.node_count
        clear_cache()


class TestReporting:
    def test_format_table(self):
        text = format_table(
            "T", ["a", "b"], {"row1": [1, 2.5], "row2": [None, 100.0]}, note="n"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "row1" in text and "2.50" in text
        assert "-" in lines[-2]  # None rendered as dash
        assert lines[-1] == "n"

    def test_paper_vs_measured_layout(self):
        text = paper_vs_measured(
            "T", ["a"], {"x (paper)": [1]}, {"x (measured)": [2]}
        )
        assert "T — paper" in text and "T — measured (this run)" in text

    def test_shape_check_passes(self):
        measured = {"fast": 1.0, "mid": 2.0, "slow": 9.0}
        assert shape_check(measured, ["fast", "mid", "slow"]) == []

    def test_shape_check_flags_inversion(self):
        measured = {"fast": 3.0, "slow": 1.0}
        violations = shape_check(measured, ["fast", "slow"])
        assert len(violations) == 1
        assert "fast" in violations[0]

    def test_shape_check_tolerance(self):
        measured = {"fast": 1.05, "slow": 1.0}
        assert shape_check(measured, ["fast", "slow"], tolerance=0.1) == []
