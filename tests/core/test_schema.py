"""CubeSchema and Dimension validation."""

import pytest

from repro.core.aggregators import AVG, SUM
from repro.core.errors import SchemaError
from repro.core.schema import CubeSchema, Dimension


class TestDimension:
    def test_plain(self):
        d = Dimension("station")
        assert d.name == "station"
        assert d.dimension_table is None
        assert d.hierarchy == ("station",)

    def test_with_dimension_table(self):
        d = Dimension("station", dimension_table="Station")
        assert d.dimension_table == "Station"

    def test_with_hierarchy(self):
        d = Dimension("station", hierarchy=["station", "district", "city"])
        assert d.hierarchy == ("station", "district", "city")

    def test_duplicate_hierarchy_levels_rejected(self):
        with pytest.raises(SchemaError):
            Dimension("x", hierarchy=["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Dimension("")

    def test_equality_and_hash(self):
        assert Dimension("a") == Dimension("a")
        assert Dimension("a") != Dimension("b")
        assert hash(Dimension("a")) == hash(Dimension("a"))


class TestCubeSchema:
    def test_string_dimensions_promoted(self):
        schema = CubeSchema("c", ["a", "b"])
        assert all(isinstance(d, Dimension) for d in schema.dimensions)
        assert schema.dimension_names == ("a", "b")

    def test_dimension_index(self):
        schema = CubeSchema("c", ["a", "b", "c3"])
        assert schema.dimension_index("a") == 0
        assert schema.dimension_index("c3") == 2

    def test_unknown_dimension_raises(self):
        schema = CubeSchema("c", ["a"])
        with pytest.raises(SchemaError, match="no dimension"):
            schema.dimension_index("zz")

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            CubeSchema("c", ["a", "a"])

    def test_no_dimensions_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema("c", [])

    def test_measure_collision_rejected(self):
        with pytest.raises(SchemaError, match="collides"):
            CubeSchema("c", ["a"], measure="a")

    def test_aggregator_by_name(self):
        schema = CubeSchema("c", ["a"], aggregator="avg")
        assert schema.aggregator is AVG

    def test_default_aggregator_is_sum(self):
        assert CubeSchema("c", ["a"]).aggregator is SUM

    def test_len_is_dimension_count(self):
        assert len(CubeSchema("c", ["a", "b"])) == 2

    def test_equality(self):
        a = CubeSchema("c", ["a", "b"])
        b = CubeSchema("c", ["a", "b"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != CubeSchema("c", ["a", "x"])

    def test_eight_dimensions_like_the_paper(self):
        schema = CubeSchema("bikes", [f"d{i}" for i in range(8)])
        assert schema.n_dimensions == 8
