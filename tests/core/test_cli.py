"""The command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def telemetry_restored():
    """Restore the global telemetry switches after CLI commands flip them."""
    from repro.telemetry import get_query_log, get_registry, get_tracer

    reg, trc, qlog = get_registry(), get_tracer(), get_query_log()
    was = (reg.enabled, trc.enabled, qlog.enabled)
    yield
    reg.enabled, trc.enabled, qlog.enabled = was
    reg.reset()
    trc.reset()
    qlog.reset()


class TestGenerate:
    def test_writes_documents(self, tmp_path, capsys):
        code = main([
            "generate", "--days", "1", "--records", "60",
            "--output", str(tmp_path / "feed"),
        ])
        assert code == 0
        files = sorted((tmp_path / "feed").glob("*.xml"))
        assert files
        assert "<station>" in files[0].read_text()
        assert "wrote" in capsys.readouterr().out

    def test_json_format(self, tmp_path):
        main([
            "generate", "--days", "1", "--records", "30", "--format", "json",
            "--output", str(tmp_path / "feed"),
        ])
        files = sorted((tmp_path / "feed").glob("*.json"))
        assert files
        assert files[0].read_text().startswith("{")

    def test_deterministic_by_seed(self, tmp_path):
        for run in ("a", "b"):
            main([
                "generate", "--days", "1", "--records", "30", "--seed", "5",
                "--output", str(tmp_path / run),
            ])
        a = sorted((tmp_path / "a").glob("*.xml"))[0].read_text()
        b = sorted((tmp_path / "b").glob("*.xml"))[0].read_text()
        assert a == b


class TestPipeline:
    def test_runs_and_reports(self, capsys):
        code = main(["pipeline", "--records", "120", "--schema", "MySQL-Min"])
        assert code == 0
        out = capsys.readouterr().out
        assert "120 facts" in out
        assert "MySQL-Min schema_id=1" in out
        assert "grand total" in out


class TestBench:
    def test_small_matrix(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        from repro.bench.datasets import clear_cache

        clear_cache()
        code = main(["bench", "--datasets", "Day", "--schemas", "NoSQL-DWARF,MySQL-Min"])
        clear_cache()
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Table 5" in out
        assert "NoSQL-DWARF (measured)" in out

    def test_unknown_dataset(self, capsys):
        assert main(["bench", "--datasets", "Year"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unknown_schema(self, capsys):
        assert main(["bench", "--schemas", "Mongo"]) == 2
        assert "unknown schema" in capsys.readouterr().err


class TestStats:
    def test_text_report_covers_every_layer(self, capsys, monkeypatch,
                                            telemetry_restored):
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        code = main(["stats", "--dataset", "day"])  # case-insensitive name
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("etl.extract", "dwarf.build", "mapper.store",
                       "stored.point_query", "answers agree",
                       "nosqldb_writes_total", "PointLookup"):
            assert marker in out, marker

    def test_json_round_trips(self, capsys, monkeypatch, telemetry_restored):
        from repro.telemetry import from_json

        monkeypatch.setenv("REPRO_SCALE", "0.002")
        assert main(["stats", "--dataset", "Day", "--format", "json"]) == 0
        snap = from_json(capsys.readouterr().out)
        assert snap["spans"] and snap["metrics"]

    def test_prom_format_and_out_file(self, tmp_path, monkeypatch,
                                      telemetry_restored):
        from repro.telemetry import from_prometheus

        monkeypatch.setenv("REPRO_SCALE", "0.002")
        out = tmp_path / "metrics.prom"
        code = main(["stats", "--dataset", "Day", "--format", "prom",
                     "--out", str(out)])
        assert code == 0
        metrics = from_prometheus(out.read_text())
        assert any(m["name"] == "dwarf_builds_total" for m in metrics)

    def test_unknown_dataset(self, capsys, telemetry_restored):
        assert main(["stats", "--dataset", "Year"]) == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestHelpSync:
    """Every subcommand's --help exits 0 and lists its parser's options."""

    def subcommand_parsers(self):
        parser = build_parser()
        actions = [
            a for a in parser._actions
            if hasattr(a, "choices") and isinstance(a.choices, dict)
        ]
        assert actions, "no subparsers registered"
        return actions[0].choices

    def test_every_subcommand_registered(self):
        assert set(self.subcommand_parsers()) == {
            "generate", "pipeline", "bench", "check", "stats", "ingest",
            "top", "debug-bundle",
        }

    @pytest.mark.parametrize(
        "command",
        ["generate", "pipeline", "bench", "check", "stats", "ingest",
         "top", "debug-bundle"],
    )
    def test_help_exits_zero_and_lists_options(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        subparser = self.subcommand_parsers()[command]
        for action in subparser._actions:
            for option in action.option_strings:
                assert option in help_text, (command, option)

    def test_every_subcommand_has_a_handler(self):
        import repro.cli as cli

        for command in self.subcommand_parsers():
            assert hasattr(cli, f"_cmd_{command.replace('-', '_')}")


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
