"""The command-line interface."""

import os

import pytest

from repro.cli import main


class TestGenerate:
    def test_writes_documents(self, tmp_path, capsys):
        code = main([
            "generate", "--days", "1", "--records", "60",
            "--output", str(tmp_path / "feed"),
        ])
        assert code == 0
        files = sorted((tmp_path / "feed").glob("*.xml"))
        assert files
        assert "<station>" in files[0].read_text()
        assert "wrote" in capsys.readouterr().out

    def test_json_format(self, tmp_path):
        main([
            "generate", "--days", "1", "--records", "30", "--format", "json",
            "--output", str(tmp_path / "feed"),
        ])
        files = sorted((tmp_path / "feed").glob("*.json"))
        assert files
        assert files[0].read_text().startswith("{")

    def test_deterministic_by_seed(self, tmp_path):
        for run in ("a", "b"):
            main([
                "generate", "--days", "1", "--records", "30", "--seed", "5",
                "--output", str(tmp_path / run),
            ])
        a = sorted((tmp_path / "a").glob("*.xml"))[0].read_text()
        b = sorted((tmp_path / "b").glob("*.xml"))[0].read_text()
        assert a == b


class TestPipeline:
    def test_runs_and_reports(self, capsys):
        code = main(["pipeline", "--records", "120", "--schema", "MySQL-Min"])
        assert code == 0
        out = capsys.readouterr().out
        assert "120 facts" in out
        assert "MySQL-Min schema_id=1" in out
        assert "grand total" in out


class TestBench:
    def test_small_matrix(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        from repro.bench.datasets import clear_cache

        clear_cache()
        code = main(["bench", "--datasets", "Day", "--schemas", "NoSQL-DWARF,MySQL-Min"])
        clear_cache()
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Table 5" in out
        assert "NoSQL-DWARF (measured)" in out

    def test_unknown_dataset(self, capsys):
        assert main(["bench", "--datasets", "Year"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unknown_schema(self, capsys):
        assert main(["bench", "--schemas", "Mongo"]) == 2
        assert "unknown schema" in capsys.readouterr().err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
