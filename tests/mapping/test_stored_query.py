"""Stored-cube query primitives: all four schemas answer without reload."""

import pytest

from repro.dwarf.builder import build_cube
from repro.dwarf.cell import ALL
from repro.mapping.base import MappingError
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper
from repro.mapping.stored_query import explain_strategy, stored_point_query

ALL_MAPPERS = [MySQLDwarfMapper, MySQLMinMapper, NoSQLDwarfMapper, NoSQLMinMapper]


@pytest.fixture(params=ALL_MAPPERS, ids=lambda cls: cls.name)
def stored(request, sample_cube):
    mapper = request.param()
    mapper.install()
    schema_id = mapper.store(sample_cube)
    return mapper, schema_id, sample_cube


class TestStoredPointQuery:
    def test_full_point(self, stored):
        mapper, schema_id, cube = stored
        value = stored_point_query(mapper, schema_id, ["Ireland", "Dublin", "Fenian St"])
        assert value == 3

    def test_partial_all(self, stored):
        mapper, schema_id, cube = stored
        assert stored_point_query(mapper, schema_id, ["Ireland", ALL, ALL]) == 10
        assert stored_point_query(mapper, schema_id, [ALL, "Dublin", ALL]) == 8

    def test_grand_total(self, stored):
        mapper, schema_id, cube = stored
        assert stored_point_query(mapper, schema_id, [ALL, ALL, ALL]) == cube.total()

    def test_missing_member(self, stored):
        mapper, schema_id, _ = stored
        assert stored_point_query(mapper, schema_id, ["Spain", ALL, ALL]) is None
        assert stored_point_query(mapper, schema_id, ["Ireland", "Dublin", "Nowhere"]) is None

    def test_agrees_with_reloaded_cube_everywhere(self, stored):
        mapper, schema_id, cube = stored
        reloaded = mapper.load(schema_id)
        members = [cube.members(d) + (ALL,) for d in cube.schema.dimension_names]
        for country in members[0]:
            for city in members[1][:3]:
                coords = [country, city, ALL]
                assert stored_point_query(mapper, schema_id, coords) == reloaded.value(coords)

    def test_integer_members(self, stored):
        mapper, _, _ = stored
        from repro.core.schema import CubeSchema

        schema = CubeSchema("ints", ["hour", "station"])
        cube = build_cube([(8, "a", 1), (9, "a", 2), (9, "b", 4)], schema)
        schema_id = mapper.store(cube)
        assert stored_point_query(mapper, schema_id, [9, ALL]) == 6
        assert stored_point_query(mapper, schema_id, [8, "a"]) == 1

    def test_second_stored_cube_isolated(self, stored):
        mapper, first_id, cube = stored
        other = build_cube(
            [("Ireland", "Dublin", "Fenian St", 100)], cube.schema
        )
        second_id = mapper.store(other)
        assert stored_point_query(mapper, second_id, [ALL, ALL, ALL]) == 100
        assert stored_point_query(mapper, first_id, [ALL, ALL, ALL]) == cube.total()


class TestPlanLayer:
    def test_explain_strategy_uses_shared_vocabulary(self, stored):
        mapper, schema_id, _ = stored
        plans = explain_strategy(mapper, schema_id)
        assert plans
        for rows in plans.values():
            assert rows
            for row in rows:
                assert set(row) == {"step", "node", "table", "key", "detail"}

    def test_cell_match_is_a_batched_plan(self, stored):
        mapper, schema_id, _ = stored
        plans = explain_strategy(mapper, schema_id)
        nodes = {row["node"] for rows in plans.values() for row in rows}
        details = {row["detail"] for rows in plans.values() for row in rows}
        if mapper.name in ("NoSQL-DWARF", "MySQL-DWARF"):
            assert "MultiGet" in nodes and "Filter" in nodes
        elif mapper.name == "NoSQL-Min":
            # The per-level name match is pushed into the storage layer:
            # no Filter operator remains, the IndexScan renders it.
            assert "IndexScan" in nodes and "Filter" not in nodes
            assert any("pushed=name = ?1" in detail for detail in details)
        else:  # MySQL-Min reconstructs from one filtered scan
            assert "FullScan" in nodes

    def test_warm_walk_hits_plan_cache(self, stored):
        mapper, schema_id, _ = stored
        stored_point_query(mapper, schema_id, [ALL, ALL, ALL])
        before = mapper.session.plan_cache.stats().hits
        assert stored_point_query(mapper, schema_id, [ALL, ALL, ALL]) is not None
        assert mapper.session.plan_cache.stats().hits > before


def test_unknown_mapper_type_rejected(sample_cube):
    class Fake:
        pass

    with pytest.raises(MappingError, match="strategy"):
        stored_point_query(Fake(), 1, [ALL])

    with pytest.raises(MappingError, match="strategy"):
        explain_strategy(Fake())
