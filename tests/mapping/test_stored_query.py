"""Stored-cube query primitives: all four schemas answer without reload."""

import pytest

from repro.dwarf.builder import build_cube
from repro.dwarf.cell import ALL
from repro.mapping.base import MappingError
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper
from repro.mapping.stored_query import (
    analyze_strategy,
    explain_strategy,
    stored_point_query,
)
from repro.query import ACTUAL_COLUMNS

ALL_MAPPERS = [MySQLDwarfMapper, MySQLMinMapper, NoSQLDwarfMapper, NoSQLMinMapper]


@pytest.fixture(params=ALL_MAPPERS, ids=lambda cls: cls.name)
def stored(request, sample_cube):
    mapper = request.param()
    mapper.install()
    schema_id = mapper.store(sample_cube)
    return mapper, schema_id, sample_cube


class TestStoredPointQuery:
    def test_full_point(self, stored):
        mapper, schema_id, cube = stored
        value = stored_point_query(mapper, schema_id, ["Ireland", "Dublin", "Fenian St"])
        assert value == 3

    def test_partial_all(self, stored):
        mapper, schema_id, cube = stored
        assert stored_point_query(mapper, schema_id, ["Ireland", ALL, ALL]) == 10
        assert stored_point_query(mapper, schema_id, [ALL, "Dublin", ALL]) == 8

    def test_grand_total(self, stored):
        mapper, schema_id, cube = stored
        assert stored_point_query(mapper, schema_id, [ALL, ALL, ALL]) == cube.total()

    def test_missing_member(self, stored):
        mapper, schema_id, _ = stored
        assert stored_point_query(mapper, schema_id, ["Spain", ALL, ALL]) is None
        assert stored_point_query(mapper, schema_id, ["Ireland", "Dublin", "Nowhere"]) is None

    def test_agrees_with_reloaded_cube_everywhere(self, stored):
        mapper, schema_id, cube = stored
        reloaded = mapper.load(schema_id)
        members = [cube.members(d) + (ALL,) for d in cube.schema.dimension_names]
        for country in members[0]:
            for city in members[1][:3]:
                coords = [country, city, ALL]
                assert stored_point_query(mapper, schema_id, coords) == reloaded.value(coords)

    def test_integer_members(self, stored):
        mapper, _, _ = stored
        from repro.core.schema import CubeSchema

        schema = CubeSchema("ints", ["hour", "station"])
        cube = build_cube([(8, "a", 1), (9, "a", 2), (9, "b", 4)], schema)
        schema_id = mapper.store(cube)
        assert stored_point_query(mapper, schema_id, [9, ALL]) == 6
        assert stored_point_query(mapper, schema_id, [8, "a"]) == 1

    def test_second_stored_cube_isolated(self, stored):
        mapper, first_id, cube = stored
        other = build_cube(
            [("Ireland", "Dublin", "Fenian St", 100)], cube.schema
        )
        second_id = mapper.store(other)
        assert stored_point_query(mapper, second_id, [ALL, ALL, ALL]) == 100
        assert stored_point_query(mapper, first_id, [ALL, ALL, ALL]) == cube.total()


class TestPlanLayer:
    def test_explain_strategy_uses_shared_vocabulary(self, stored):
        mapper, schema_id, _ = stored
        plans = explain_strategy(mapper, schema_id)
        assert plans
        for rows in plans.values():
            assert rows
            for row in rows:
                assert set(row) == {"step", "node", "table", "key", "detail"}

    def test_cell_match_is_a_batched_plan(self, stored):
        mapper, schema_id, _ = stored
        plans = explain_strategy(mapper, schema_id)
        nodes = {row["node"] for rows in plans.values() for row in rows}
        details = {row["detail"] for rows in plans.values() for row in rows}
        if mapper.name in ("NoSQL-DWARF", "MySQL-DWARF"):
            assert "MultiGet" in nodes and "Filter" in nodes
        elif mapper.name == "NoSQL-Min":
            # The per-level name match is pushed into the storage layer:
            # no Filter operator remains, the IndexScan renders it.
            assert "IndexScan" in nodes and "Filter" not in nodes
            assert any("pushed=name = ?1" in detail for detail in details)
        else:  # MySQL-Min reconstructs from one filtered scan
            assert "FullScan" in nodes

    def test_warm_walk_hits_plan_cache(self, stored):
        mapper, schema_id, _ = stored
        stored_point_query(mapper, schema_id, [ALL, ALL, ALL])
        before = mapper.session.plan_cache.stats().hits
        assert stored_point_query(mapper, schema_id, [ALL, ALL, ALL]) is not None
        assert mapper.session.plan_cache.stats().hits > before


class TestAnalyzeStrategy:
    def test_answer_matches_plain_run(self, stored):
        mapper, schema_id, _ = stored
        coords = ["Ireland", "Dublin", "Fenian St"]
        plain = stored_point_query(mapper, schema_id, coords)
        out = analyze_strategy(mapper, schema_id, coords)
        assert out["answer"] == plain == 3

    def test_steps_carry_explain_vocabulary_plus_actuals(self, stored):
        mapper, schema_id, _ = stored
        out = analyze_strategy(mapper, schema_id, ["Ireland", ALL, ALL])
        assert out["steps"]
        for rows in out["steps"].values():
            assert rows
            for row in rows:
                assert {"step", "node", "table", "key", "detail"} <= set(row)
                for column in ACTUAL_COLUMNS:
                    assert column in row

    def test_missing_member_analyzes_to_none(self, stored):
        mapper, schema_id, _ = stored
        out = analyze_strategy(mapper, schema_id, ["Spain", ALL, ALL])
        assert out["answer"] is None

    def test_repeated_analysis_is_stable(self, stored):
        """Cumulative counters are framed per run: analyzing twice gives
        the same answer and never-doubled per-step actuals (a warm
        mapper cache may legitimately drop them to zero — the statement
        simply did not re-execute)."""
        mapper, schema_id, _ = stored
        coords = [ALL, "Dublin", ALL]
        first = analyze_strategy(mapper, schema_id, coords)
        second = analyze_strategy(mapper, schema_id, coords)
        assert second["answer"] == first["answer"] == 8
        shared = set(first["steps"]) & set(second["steps"])
        assert shared
        for step in shared:
            for one, two in zip(first["steps"][step], second["steps"][step]):
                if isinstance(one["rows"], int) and isinstance(two["rows"], int):
                    assert two["rows"] <= one["rows"]

    def test_query_log_records_the_stored_walk(self, stored, monkeypatch):
        from repro.telemetry import get_query_log

        log = get_query_log()
        monkeypatch.setattr(log, "enabled", True)
        log.reset()
        try:
            mapper, schema_id, _ = stored
            stored_point_query(mapper, schema_id, ["Ireland", ALL, ALL])
            records = [r for r in log.records() if r.dialect == "stored"]
            assert records
            assert records[-1].fingerprint.startswith(
                f"STORED:{mapper.name.upper()}:POINT_QUERY"
            )
            assert records[-1].rows == 1
        finally:
            log.reset()


class TestAnalyzeWithLiveDeltas:
    """EXPLAIN ANALYZE over a maintained cube whose epoch has unmerged
    delta overlays still answers exactly like the plain stored walk."""

    @pytest.mark.parametrize("mapper_cls", ALL_MAPPERS, ids=lambda c: c.name)
    def test_epoch_overlay_answers_match(self, mapper_cls):
        from repro.core.schema import CubeSchema
        from repro.dwarf.builder import DwarfBuilder
        from repro.mapping.incremental import CubeMaintainer

        schema = CubeSchema("inc", ["d1", "d2", "d3"])
        base = [("a", 1, "x", 5), ("a", 2, "y", 3), ("b", 1, "x", 2)]
        delta = [("a", 1, "x", 4), ("b", 3, "z", 7)]
        mapper = mapper_cls()
        mapper.install()
        maintainer = CubeMaintainer.open(mapper, DwarfBuilder(schema).build(base))
        maintainer.append(delta)
        assert maintainer.pending_deltas == 1  # overlay, not merged

        reference = DwarfBuilder(schema).build(base + delta)
        for probe in (("a", 1, "x"), ("a", ALL, ALL), (ALL, ALL, ALL)):
            expected = reference.value(probe)
            plain = stored_point_query(mapper, maintainer.logical_id, probe)
            out = analyze_strategy(mapper, maintainer.logical_id, probe)
            assert plain == expected
            assert out["answer"] == expected
            assert out["steps"]


def test_unknown_mapper_type_rejected(sample_cube):
    class Fake:
        pass

    with pytest.raises(MappingError, match="strategy"):
        stored_point_query(Fake(), 1, [ALL])

    with pytest.raises(MappingError, match="strategy"):
        explain_strategy(Fake())
