"""Compiled-path stores must be indistinguishable from the legacy path.

For every one of the paper's four mappers: store the same cube through
``store(compiled=True)`` and ``store(compiled=False)`` into twin fresh
engines, then compare the visible database state row-for-row, the probed
sizes, and the reloaded cube's transformation records (which encode the
complete DAG, so equality here means a byte-identical round trip).
"""

import math

import pytest

from repro.core.schema import CubeSchema
from repro.dwarf.builder import build_cube
from repro.mapping.base import transform_cube
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper
from repro.nosqldb.engine import NoSQLEngine
from repro.sqldb.engine import SQLEngine

MAPPERS = {
    "MySQL-DWARF": (MySQLDwarfMapper, SQLEngine),
    "MySQL-Min": (MySQLMinMapper, SQLEngine),
    "NoSQL-DWARF": (NoSQLDwarfMapper, NoSQLEngine),
    "NoSQL-Min": (NoSQLMinMapper, NoSQLEngine),
}


def _cube():
    schema = CubeSchema("compiled", ["region", "kind", "hour"])
    rows = []
    for i in range(60):
        rows.append((f"r{i % 4}", f"k{i % 3}", i % 6, i - 30))
    return build_cube(rows, schema)


def _fresh(name):
    mapper_cls, engine_cls = MAPPERS[name]
    mapper = mapper_cls(engine_cls())
    mapper.install()
    return mapper


def _visible_rows(mapper):
    """Every stored row of every mapper table, in a canonical order."""
    if isinstance(mapper, (NoSQLDwarfMapper, NoSQLMinMapper)):
        container = mapper.engine.keyspace(mapper.keyspace_name)
    else:
        container = mapper.engine.database(mapper.database_name)
    tables = container.tables
    if callable(tables):
        tables = tables()
    state = {}
    for table in tables:
        rows = mapper.session.execute(f"SELECT * FROM {table.name}")
        state[table.name] = sorted(
            (tuple(sorted(r.items(), key=lambda kv: kv[0])) for r in rows),
            key=repr,
        )
    return state


@pytest.mark.parametrize("name", sorted(MAPPERS))
def test_compiled_store_matches_legacy_store(name):
    cube = _cube()
    compiled_mapper = _fresh(name)
    legacy_mapper = _fresh(name)

    compiled_id = compiled_mapper.store(cube, compiled=True)
    legacy_id = legacy_mapper.store(cube, compiled=False)
    assert compiled_id == legacy_id

    assert _visible_rows(compiled_mapper) == _visible_rows(legacy_mapper)

    compiled_info = compiled_mapper.info(compiled_id)
    legacy_info = legacy_mapper.info(legacy_id)
    assert compiled_info == legacy_info
    assert compiled_info.size_as_bytes is not None
    assert compiled_info.size_as_bytes > 0
    assert compiled_info.size_as_mb == math.floor(
        compiled_info.size_as_bytes / (1024 * 1024)
    )


@pytest.mark.parametrize("name", sorted(MAPPERS))
def test_compiled_store_roundtrip_is_byte_identical(name):
    cube = _cube()
    reference = transform_cube(cube)
    mapper = _fresh(name)
    schema_id = mapper.store(cube, compiled=True)
    reloaded = mapper.load(schema_id)
    records = transform_cube(reloaded)
    assert records.nodes == reference.nodes
    assert records.cells == reference.cells
    assert reloaded.total() == cube.total()


@pytest.mark.parametrize("name", sorted(MAPPERS))
def test_second_store_gets_fresh_ids(name):
    cube = _cube()
    mapper = _fresh(name)
    first = mapper.store(cube, compiled=True)
    second = mapper.store(cube, compiled=True)
    assert second == first + 1
    first_records = transform_cube(mapper.load(first))
    second_records = transform_cube(mapper.load(second))
    assert len(first_records.cells) == len(second_records.cells)
