"""Dimension tables alongside the stored DWARF (paper §4, Fig. 3)."""

import pytest

from repro.dwarf.builder import build_cube
from repro.mapping.base import MappingError
from repro.mapping.dimension_tables import DimensionTableStore
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper


@pytest.fixture
def mapper():
    m = NoSQLDwarfMapper()
    m.install()
    return m


@pytest.fixture
def store(mapper):
    return DimensionTableStore(mapper)


STATION_ROWS = {
    "Fenian St": {"district": "Dublin 2", "capacity": 30, "latitude": 53.341},
    "Portobello": {"district": "Dublin 8", "capacity": 25, "latitude": 53.33},
}


class TestStore:
    def test_store_and_lookup(self, store):
        assert store.store("Station", STATION_ROWS) == 2
        attrs = store.attributes("Station", "Fenian St")
        assert attrs == {"district": "Dublin 2", "capacity": 30, "latitude": 53.341}

    def test_missing_member(self, store):
        store.store("Station", STATION_ROWS)
        assert store.attributes("Station", "Nowhere") is None

    def test_missing_table(self, store):
        assert store.attributes("Ghost", "x") is None

    def test_integer_members_encoded(self, store):
        store.store("Hour", {8: {"label": "morning"}, 17: {"label": "evening"}})
        assert store.attributes("Hour", 8) == {"label": "morning"}
        # the text "8" is a different member than the int 8
        assert store.attributes("Hour", "8") is None

    def test_empty_rows_rejected(self, store):
        with pytest.raises(MappingError):
            store.store("Station", {})

    def test_mismatched_attributes_rejected(self, store):
        with pytest.raises(MappingError, match="attributes"):
            store.store("Station", {"a": {"x": 1}, "b": {"y": 2}})

    def test_attributes_without_columns_rejected(self, store):
        with pytest.raises(MappingError):
            store.store("Station", {"a": {}})

    def test_restore_overwrites(self, store):
        store.store("Station", STATION_ROWS)
        updated = {m: dict(a, capacity=99) for m, a in STATION_ROWS.items()}
        store.store("Station", updated)
        assert store.attributes("Station", "Fenian St")["capacity"] == 99


class TestDescribeCell:
    def test_follow_dimension_table_name(self, mapper, store, sample_schema):
        cube = build_cube([("Ireland", "Dublin", "Fenian St", 3)], sample_schema)
        schema_id = mapper.store(cube)
        store.store("Station", STATION_ROWS)
        # find the stored Fenian St cell id
        rows = mapper.session.execute(
            "SELECT * FROM dwarf_cell WHERE key = 's:Fenian St' ALLOW FILTERING"
        )
        cell = rows.one()
        assert cell["dimension_table_name"] == "Station"
        attrs = store.describe_cell(schema_id, cell["id"])
        assert attrs["district"] == "Dublin 2"

    def test_cell_without_dimension_table(self, mapper, store, sample_schema):
        cube = build_cube([("Ireland", "Dublin", "Fenian St", 3)], sample_schema)
        schema_id = mapper.store(cube)
        country_cell = mapper.session.execute(
            "SELECT * FROM dwarf_cell WHERE key = 's:Ireland' ALLOW FILTERING"
        ).one()
        assert store.describe_cell(schema_id, country_cell["id"]) is None

    def test_unknown_cell(self, mapper, store):
        assert store.describe_cell(1, 424242) is None


class TestBikesIntegration:
    def test_station_dimension_from_generator(self, mapper, store):
        from repro.smartcity.bikes import BikeFeedGenerator, bikes_pipeline
        from repro.dwarf.builder import build_cube

        feed = BikeFeedGenerator(n_stations=8)
        docs = feed.generate_documents(days=1, total_records=80)
        cube = build_cube(bikes_pipeline().extract(docs))
        mapper.store(cube)

        rows = {
            s.name: {
                "district": s.district,
                "capacity": s.capacity,
                "latitude": s.latitude,
                "longitude": s.longitude,
            }
            for s in feed.stations
        }
        store.store("Station", rows)
        member = cube.members("station")[0]
        attrs = store.attributes("Station", member)
        assert attrs["capacity"] >= 15
        assert attrs["district"].startswith("Dublin")
