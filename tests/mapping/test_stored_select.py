"""Declarative select against the stored NoSQL-DWARF cube."""

import pytest

from repro.dwarf.builder import build_cube
from repro.dwarf.query import Each, In, Member, Range, select
from repro.mapping.base import MappingError
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.stored_query import stored_select


@pytest.fixture
def stored(sample_cube):
    mapper = NoSQLDwarfMapper()
    mapper.install()
    schema_id = mapper.store(sample_cube)
    return mapper, schema_id, sample_cube


class TestStoredSelect:
    def test_group_by_matches_in_memory(self, stored):
        mapper, schema_id, cube = stored
        from_storage = dict(stored_select(mapper, schema_id, city=Each()))
        in_memory = dict(select(cube, city=Each()))
        assert from_storage == in_memory

    def test_member_slice(self, stored):
        mapper, schema_id, cube = stored
        result = dict(stored_select(mapper, schema_id, country=Member("Ireland")))
        assert result == {("Ireland",): 10}

    def test_in_dice(self, stored):
        mapper, schema_id, cube = stored
        result = dict(
            stored_select(mapper, schema_id, city=In(["Dublin", "Paris"]), country=Each())
        )
        assert result == dict(
            select(cube, city=In(["Dublin", "Paris"]), country=Each())
        )

    def test_no_constraints_is_grand_total(self, stored):
        mapper, schema_id, cube = stored
        assert list(stored_select(mapper, schema_id)) == [((), cube.total())]

    def test_full_leaf_enumeration(self, stored):
        mapper, schema_id, cube = stored
        spec = {name: Each() for name in cube.schema.dimension_names}
        assert sorted(stored_select(mapper, schema_id, spec)) == sorted(cube.leaves())

    def test_range_over_int_members(self):
        from repro.core.schema import CubeSchema

        schema = CubeSchema("h", ["hour", "station"])
        cube = build_cube([(8, "a", 1), (9, "a", 2), (17, "b", 4)], schema)
        mapper = NoSQLDwarfMapper()
        mapper.install()
        schema_id = mapper.store(cube)
        result = dict(stored_select(mapper, schema_id, hour=Range(8, 9)))
        assert result == {(8,): 1, (9,): 2}

    def test_rejects_other_mappers(self, sample_cube):
        mapper = MySQLMinMapper()
        mapper.install()
        mapper.store(sample_cube)
        with pytest.raises(MappingError, match="NoSQL-DWARF"):
            list(stored_select(mapper, 1))

    def test_rejects_non_constraint(self, stored):
        mapper, schema_id, _ = stored
        from repro.core.errors import QueryError

        with pytest.raises(QueryError):
            list(stored_select(mapper, schema_id, city="Dublin"))
