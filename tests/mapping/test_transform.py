"""transform_cube / rebuild_cube: the flat form shared by all mappers."""

import pytest

from repro.core.schema import CubeSchema
from repro.dwarf.builder import build_cube
from repro.mapping.base import (
    ALL_KEY_TEXT,
    MappingError,
    decode_member,
    derive_levels,
    encode_member,
    rebuild_cube,
    transform_cube,
)
from repro.dwarf.cell import ALL

from tests.conftest import SAMPLE_ROWS


class TestMemberCodec:
    @pytest.mark.parametrize("member", ["Fenian St", 8, -3, 2.5, True, False, "", "i:tricky"])
    def test_round_trip(self, member):
        assert decode_member(encode_member(member)) == member

    def test_all_sentinel(self):
        assert encode_member(ALL) == ALL_KEY_TEXT

    def test_unsupported_type(self):
        with pytest.raises(MappingError):
            encode_member(object())

    def test_corrupt_text(self):
        with pytest.raises(MappingError):
            decode_member("garbage")
        with pytest.raises(MappingError):
            decode_member("z:1")

    def test_types_distinguished(self):
        assert decode_member(encode_member(1)) != decode_member(encode_member("1"))
        assert decode_member(encode_member(True)) is True


class TestTransform:
    def test_counts_match_stats(self, sample_cube):
        transformed = transform_cube(sample_cube)
        stats = sample_cube.stats
        assert len(transformed.nodes) == stats.node_count
        assert len(transformed.cells) == stats.cell_count

    def test_ids_unique_and_sequential(self, sample_cube):
        transformed = transform_cube(sample_cube, first_node_id=10, first_cell_id=100)
        node_ids = [n.node_id for n in transformed.nodes]
        cell_ids = [c.cell_id for c in transformed.cells]
        assert sorted(node_ids) == list(range(10, 10 + len(node_ids)))
        assert sorted(cell_ids) == list(range(100, 100 + len(cell_ids)))

    def test_entry_node_is_root(self, sample_cube):
        transformed = transform_cube(sample_cube)
        root = next(n for n in transformed.nodes if n.is_root)
        assert root.node_id == transformed.entry_node_id
        assert root.level == 0
        assert root.parent_cell_ids == ()

    def test_shared_node_has_multiple_parents(self, sample_cube):
        transformed = transform_cube(sample_cube)
        assert any(len(n.parent_cell_ids) > 1 for n in transformed.nodes)

    def test_children_partition_cells(self, sample_cube):
        transformed = transform_cube(sample_cube)
        listed = sorted(
            cell_id for node in transformed.nodes for cell_id in node.children_cell_ids
        )
        assert listed == sorted(c.cell_id for c in transformed.cells)

    def test_leaf_cells_have_measures(self, sample_cube):
        transformed = transform_cube(sample_cube)
        for cell in transformed.cells:
            if cell.is_leaf:
                assert isinstance(cell.measure, int)
                assert cell.pointer_node_id is None
            else:
                assert cell.measure is None
                assert cell.pointer_node_id is not None

    def test_dimension_table_recorded(self, sample_cube):
        transformed = transform_cube(sample_cube)
        station_cells = [c for c in transformed.cells if c.level == 2]
        assert all(c.dimension_table == "Station" for c in station_cells)

    def test_root_cells_flagged(self, sample_cube):
        transformed = transform_cube(sample_cube)
        root_cells = [c for c in transformed.cells if c.is_root_cell]
        # Ireland, France + the root ALL cell
        assert len(root_cells) == 3

    def test_non_integer_measures_rejected(self):
        schema = CubeSchema("avg", ["a", "b"], aggregator="avg")
        cube = build_cube([("x", "y", 1)], schema)
        with pytest.raises(MappingError, match="measure as int"):
            transform_cube(cube)


class TestRebuild:
    def test_round_trip(self, sample_cube):
        transformed = transform_cube(sample_cube)
        rebuilt = rebuild_cube(
            sample_cube.schema,
            transformed.nodes,
            transformed.cells,
            transformed.entry_node_id,
            n_source_tuples=sample_cube.n_source_tuples,
        )
        assert sorted(rebuilt.leaves()) == sorted(sample_cube.leaves())
        assert rebuilt.total() == sample_cube.total()
        assert rebuilt.value(["Ireland", ALL, ALL]) == 10

    def test_rebuild_preserves_sharing(self, sample_cube):
        transformed = transform_cube(sample_cube)
        rebuilt = rebuild_cube(
            sample_cube.schema, transformed.nodes, transformed.cells,
            transformed.entry_node_id,
        )
        assert rebuilt.stats.node_count == sample_cube.stats.node_count
        assert rebuilt.stats.shared_node_count == sample_cube.stats.shared_node_count

    def test_missing_entry_node(self, sample_cube):
        transformed = transform_cube(sample_cube)
        with pytest.raises(MappingError, match="entry node"):
            rebuild_cube(sample_cube.schema, transformed.nodes, transformed.cells, 99999)

    def test_dangling_pointer(self, sample_cube):
        transformed = transform_cube(sample_cube)
        broken = [
            c._replace(pointer_node_id=99999) if not c.is_leaf else c
            for c in transformed.cells
        ]
        with pytest.raises(MappingError, match="missing node"):
            rebuild_cube(
                sample_cube.schema, transformed.nodes, broken, transformed.entry_node_id
            )


class TestDeriveLevels:
    def test_levels_match_structure(self, sample_cube):
        transformed = transform_cube(sample_cube)
        levels = derive_levels(transformed.cells, transformed.entry_node_id)
        by_id = {n.node_id: n.level for n in transformed.nodes}
        assert levels == by_id
