"""Fig. 3: the cell → CQL INSERT transformation, as literal statement text."""

from repro.dwarf.builder import build_cube
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.nosqldb.cql.parser import parse
from repro.nosqldb.engine import NoSQLEngine


class TestStatementGeneration:
    def test_cell_insert_shape_matches_fig3(self, sample_cube):
        mapper = NoSQLDwarfMapper(NoSQLEngine())
        statements = list(mapper.statements(sample_cube))
        cell_inserts = [s for s in statements if "INTO dwarf_cell" in s]
        assert cell_inserts
        sample = cell_inserts[0]
        assert sample.startswith(
            "INSERT INTO dwarf_cell (id, key, measure, parentNode, pointerNode, "
            "leaf, schema_id, dimension_table_name) VALUES ("
        )

    def test_every_statement_parses(self, sample_cube):
        mapper = NoSQLDwarfMapper(NoSQLEngine())
        for statement in mapper.statements(sample_cube):
            parse(statement)

    def test_statement_counts(self, sample_cube):
        mapper = NoSQLDwarfMapper(NoSQLEngine())
        statements = list(mapper.statements(sample_cube))
        stats = sample_cube.stats
        assert len(statements) == 1 + stats.node_count + stats.cell_count

    def test_leaf_cell_values_inline(self, sample_schema):
        """The Fig. 3 example: leaf 'Fenian St' with measure 3."""
        cube = build_cube([("Ireland", "Dublin", "Fenian St", 3)], sample_schema)
        mapper = NoSQLDwarfMapper(NoSQLEngine())
        fenian = [
            s for s in mapper.statements(cube)
            if "'s:Fenian St'" in s and "INTO dwarf_cell" in s
        ]
        assert fenian
        assert ", 3," in fenian[0]          # the measure
        assert "true" in fenian[0]          # leaf flag
        assert "'Station'" in fenian[0]     # dimension_table_name

    def test_node_insert_uses_set_literals(self, sample_cube):
        mapper = NoSQLDwarfMapper(NoSQLEngine())
        node_inserts = [s for s in mapper.statements(sample_cube) if "INTO dwarf_node" in s]
        assert all("{" in s and "}" in s for s in node_inserts)

    def test_quotes_escaped(self, sample_schema):
        cube = build_cube([("Ireland", "Dublin", "O'Connell St", 1)], sample_schema)
        mapper = NoSQLDwarfMapper(NoSQLEngine())
        statements = [s for s in mapper.statements(cube) if "O''Connell" in s]
        assert statements
        for statement in statements:
            parse(statement)

    def test_raw_statements_executable_end_to_end(self, sample_cube):
        """Executing the generated text reproduces the bulk-stored cube."""
        engine = NoSQLEngine()
        mapper = NoSQLDwarfMapper(engine)
        mapper.install()
        session = engine.connect("dwarf_warehouse")
        for statement in mapper.statements(sample_cube, schema_id=1):
            session.execute(statement)
        rebuilt = mapper.load(1, schema=sample_cube.schema)
        assert sorted(rebuilt.leaves()) == sorted(sample_cube.leaves())
