"""The traversal lookup table (paper §4)."""

from repro.mapping.lookup import LookupTable


class Thing:
    pass


class TestLookupTable:
    def test_sequential_ids(self):
        table = LookupTable()
        a, b = Thing(), Thing()
        assert table.assign(a) == (1, True)
        assert table.assign(b) == (2, True)

    def test_revisit_returns_same_id(self):
        table = LookupTable()
        a = Thing()
        first, fresh = table.assign(a)
        second, again = table.assign(a)
        assert first == second
        assert fresh and not again

    def test_custom_first_id(self):
        table = LookupTable(first_id=100)
        assert table.assign(Thing())[0] == 100

    def test_id_of(self):
        table = LookupTable()
        a = Thing()
        table.assign(a)
        assert table.id_of(a) == 1

    def test_seen(self):
        table = LookupTable()
        a = Thing()
        assert not table.seen(a)
        table.assign(a)
        assert table.seen(a)

    def test_equal_but_distinct_objects_get_distinct_ids(self):
        # identity-based, not equality-based: two equal tuples are still
        # two objects... but identical small ints/strs may be interned,
        # so use fresh objects.
        table = LookupTable()
        a, b = [1, 2], [1, 2]
        assert table.assign(a)[0] != table.assign(b)[0]

    def test_items_lists_all(self):
        table = LookupTable()
        things = [Thing() for _ in range(5)]
        for thing in things:
            table.assign(thing)
        assert len(table) == 5
        assert {obj for obj, _ in table.items()} == set(things)

    def test_holds_references_against_id_reuse(self):
        table = LookupTable()
        for _ in range(100):
            table.assign(Thing())  # objects would be GC'd without the table
        ids = [assigned for _, assigned in table.items()]
        assert len(set(ids)) == 100
