"""Crash-replay of maintained cubes with the sanitizers on.

A crash that lands in the middle of a merge flip — the folded cube is
stored but the publishing UPDATE never ran — must leave the last
published epoch authoritative.  On the NoSQL engines the crash wipes the
memtables and the commit log replays every row (including the epoch row
and its intent marker); on the SQL engines the heap survives in-process
and recovery only has to resolve the orphaned intent.  Either way the
overlay answers exactly as before the crash, and with ``REPRO_CHECK=1``
every build, merge and replayed structure runs its invariant checker.
"""

import pytest

from repro.core.schema import CubeSchema
from repro.dwarf.builder import DwarfBuilder
from repro.dwarf.cell import ALL
from repro.mapping.incremental import (
    CubeMaintainer,
    _predict_physical_id,
    _update_epoch_row,
    require_epoch,
)
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper
from repro.mapping.stored_query import stored_point_query

BATCHES = [
    [("a", 1, "x", 5), ("a", 2, "y", 3), ("b", 1, "x", 2)],
    [("a", 1, "x", 4), ("b", 3, "z", 7)],
]

PROBES = [("a", 1, "x"), ("a", ALL, ALL), (ALL, ALL, ALL), ("b", 3, "z")]


def schema():
    return CubeSchema("crash", ["d1", "d2", "d3"])


def reference():
    return DwarfBuilder(schema()).build([r for b in BATCHES for r in b])


@pytest.fixture(autouse=True)
def sanitizers_on(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")


def maintained(mapper_cls):
    mapper = mapper_cls()
    mapper.install()
    maintainer = CubeMaintainer.open(
        mapper, DwarfBuilder(schema()).build(BATCHES[0])
    )
    maintainer.append(BATCHES[1])
    return mapper, maintainer


def interrupt_merge_before_publish(mapper, maintainer):
    """Drive a merge up to — but not through — the publishing UPDATE.

    Exactly what ``flip_epoch`` does, stopped one statement short: the
    intent marker is set, the folded cube's rows are fully stored, and
    then the process "dies" before the single-row flip.
    """
    merged = maintainer._delta_builder.merge(
        maintainer._base_cube, *maintainer._delta_cubes
    )
    view = require_epoch(mapper, maintainer.logical_id)
    view.pending_id = _predict_physical_id(mapper)
    _update_epoch_row(mapper, view)
    mapper.store(merged, is_cube=True)
    # crash here: the epoch row still shows epoch 0 + the intent marker


def assert_pre_crash_answers(mapper, logical_id):
    expected = reference()
    for probe in PROBES:
        assert stored_point_query(mapper, logical_id, probe) == expected.value(probe)


@pytest.mark.parametrize(
    "mapper_cls", [NoSQLDwarfMapper, NoSQLMinMapper], ids=lambda cls: cls.name
)
class TestNoSQLCrashReplay:
    def test_crash_during_merge_replays_to_published_epoch(self, mapper_cls):
        mapper, maintainer = maintained(mapper_cls)
        logical_id = maintainer.logical_id
        interrupt_merge_before_publish(mapper, maintainer)

        keyspace = mapper.engine.keyspace(mapper.keyspace_name)
        keyspace.simulate_crash()
        assert keyspace.replay_commit_log() > 0
        mapper.bump_cube_epoch()  # in-memory caches died with the process

        # Recovery tombstones the orphaned merge output, keeps epoch 0,
        # and the replayed overlay answers exactly as before the crash.
        resumed = CubeMaintainer.attach(mapper, logical_id)
        view = resumed.view()
        assert view.pending_id == 0
        assert view.epoch == 0
        assert len(view.retired_ids) == 1
        assert resumed.pending_deltas == 1
        assert_pre_crash_answers(mapper, logical_id)

        # The resumed loop completes the interrupted work: merge, flip,
        # compact — all under REPRO_CHECK=1.
        assert resumed.merge() == 1
        assert resumed.compact() > 0
        assert_pre_crash_answers(mapper, logical_id)

    def test_crash_before_delta_store_leaves_clean_intent(self, mapper_cls):
        mapper, maintainer = maintained(mapper_cls)
        logical_id = maintainer.logical_id
        view = require_epoch(mapper, logical_id)
        view.pending_id = _predict_physical_id(mapper)
        _update_epoch_row(mapper, view)  # intent recorded, store never ran

        keyspace = mapper.engine.keyspace(mapper.keyspace_name)
        keyspace.simulate_crash()
        keyspace.replay_commit_log()
        mapper.bump_cube_epoch()

        resumed = CubeMaintainer.attach(mapper, logical_id)
        view = resumed.view()
        assert view.pending_id == 0
        assert view.retired_ids == ()  # nothing was written, nothing to retire
        assert_pre_crash_answers(mapper, logical_id)


@pytest.mark.parametrize(
    "mapper_cls", [MySQLDwarfMapper, MySQLMinMapper], ids=lambda cls: cls.name
)
class TestSQLCrashRecovery:
    def test_interrupted_merge_recovers_to_published_epoch(self, mapper_cls):
        mapper, maintainer = maintained(mapper_cls)
        logical_id = maintainer.logical_id
        interrupt_merge_before_publish(mapper, maintainer)
        mapper.bump_cube_epoch()

        resumed = CubeMaintainer.attach(mapper, logical_id)
        view = resumed.view()
        assert view.pending_id == 0
        assert view.epoch == 0
        assert len(view.retired_ids) == 1
        assert_pre_crash_answers(mapper, logical_id)

        assert resumed.merge() == 1
        assert resumed.compact() > 0
        assert_pre_crash_answers(mapper, logical_id)
