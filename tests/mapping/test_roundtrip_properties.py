"""Property-based bi-directionality: random cubes survive every mapper."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.schema import CubeSchema
from repro.dwarf.builder import build_cube
from repro.dwarf.cell import ALL
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.sampled_from([1, 2, 3, 4]),       # integer members exercise the codec
        st.sampled_from(["x", "y", "z", "w"]),
        st.integers(min_value=-100, max_value=100),
    ),
    min_size=1,
    max_size=25,
)


@pytest.mark.parametrize(
    "mapper_cls", [MySQLDwarfMapper, MySQLMinMapper, NoSQLDwarfMapper, NoSQLMinMapper],
    ids=lambda cls: cls.name,
)
@given(rows=rows_strategy)
@settings(max_examples=20, deadline=None)
def test_random_cube_roundtrips(mapper_cls, rows):
    schema = CubeSchema("prop", ["d1", "d2", "d3"])
    cube = build_cube(rows, schema)
    mapper = mapper_cls()
    mapper.install()
    rebuilt = mapper.load(mapper.store(cube, probe_size=False))
    assert sorted(rebuilt.leaves()) == sorted(cube.leaves())
    assert rebuilt.total() == cube.total()
    # spot-check every 1-dimension aggregate
    for dim_index, name in enumerate(schema.dimension_names):
        for member in cube.members(name):
            probe = [ALL, ALL, ALL]
            probe[dim_index] = member
            assert rebuilt.value(probe) == cube.value(probe)
