"""Incremental maintenance: epochs, overlays, merges, compaction.

Every stage of the maintenance loop must answer exactly like a cold
rebuild over every fact seen so far — before a merge (base + delta
overlay), after the flip (merged base), and after compaction.
"""

import pytest

from repro.analysis.dwarf_check import structural_signature
from repro.core.schema import CubeSchema
from repro.dwarf.builder import DwarfBuilder
from repro.dwarf.cell import ALL
from repro.dwarf.query import Each, Member
from repro.dwarf.query import select as memory_select
from repro.mapping.base import MappingError
from repro.mapping.incremental import (
    CubeMaintainer,
    recover_epoch,
    resolve_epoch,
    resolve_merge_deltas,
)
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper
from repro.mapping.stored_query import (
    stored_cell_count,
    stored_point_query,
    stored_select,
)

ALL_MAPPERS = [MySQLDwarfMapper, MySQLMinMapper, NoSQLDwarfMapper, NoSQLMinMapper]

BATCHES = [
    [("a", 1, "x", 5), ("a", 2, "y", 3), ("b", 1, "x", 2)],
    [("a", 1, "x", 4), ("b", 3, "z", 7)],
    [("c", 2, "y", 1), ("a", 2, "y", 6)],
]

PROBES = [
    ("a", 1, "x"),
    ("a", ALL, ALL),
    (ALL, ALL, ALL),
    (ALL, 2, "y"),
    ("b", 3, ALL),
    ("zz", 1, "x"),
]


def schema():
    return CubeSchema("inc", ["d1", "d2", "d3"])


def rebuild(n_batches):
    rows = [row for batch in BATCHES[:n_batches] for row in batch]
    return DwarfBuilder(schema()).build(rows)


def installed(mapper_cls):
    mapper = mapper_cls()
    mapper.install()
    return mapper


def assert_answers(mapper, logical_id, reference):
    for probe in PROBES:
        assert stored_point_query(mapper, logical_id, probe) == reference.value(probe)


@pytest.mark.parametrize("mapper_cls", ALL_MAPPERS, ids=lambda cls: cls.name)
class TestMaintenanceLoop:
    def test_overlay_then_merge_then_compact(self, mapper_cls):
        mapper = installed(mapper_cls)
        maintainer = CubeMaintainer.open(
            mapper, DwarfBuilder(schema()).build(BATCHES[0])
        )
        logical_id = maintainer.logical_id

        # Base only: a maintained cube answers like any stored cube.
        assert_answers(mapper, logical_id, rebuild(1))

        # Pre-merge overlay: every append is immediately visible.
        maintainer.append(BATCHES[1])
        assert_answers(mapper, logical_id, rebuild(2))
        maintainer.append(BATCHES[2])
        assert maintainer.pending_deltas == 2
        assert_answers(mapper, logical_id, rebuild(3))

        # Post-merge: one flip, same answers, new epoch.
        new_epoch = maintainer.merge()
        assert new_epoch == 1
        view = maintainer.view()
        assert view.delta_ids == ()
        assert len(view.retired_ids) == 3
        assert_answers(mapper, logical_id, rebuild(3))

        # The stored merged cube is the cube a cold rebuild produces.
        assert structural_signature(mapper.load(view.base_id)) == (
            structural_signature(rebuild(3))
        )

        # Compaction reclaims tombstoned rows without changing answers.
        assert maintainer.compact() > 0
        assert maintainer.view().retired_ids == ()
        assert_answers(mapper, logical_id, rebuild(3))

    def test_merge_async_publishes_before_join_returns(self, mapper_cls):
        mapper = installed(mapper_cls)
        maintainer = CubeMaintainer.open(
            mapper, DwarfBuilder(schema()).build(BATCHES[0])
        )
        maintainer.append(BATCHES[1])
        maintainer.merge_async()
        maintainer.wait()
        assert maintainer.view().epoch == 1
        assert_answers(mapper, maintainer.logical_id, rebuild(2))

    def test_attach_resumes_with_pending_deltas(self, mapper_cls):
        mapper = installed(mapper_cls)
        maintainer = CubeMaintainer.open(
            mapper, DwarfBuilder(schema()).build(BATCHES[0])
        )
        maintainer.append(BATCHES[1])

        resumed = CubeMaintainer.attach(mapper, maintainer.logical_id)
        assert resumed.pending_deltas == 1
        assert_answers(mapper, resumed.logical_id, rebuild(2))
        resumed.append(BATCHES[2])
        resumed.merge()
        assert_answers(mapper, resumed.logical_id, rebuild(3))

    def test_maintainer_value_reads_through_epoch(self, mapper_cls):
        mapper = installed(mapper_cls)
        maintainer = CubeMaintainer.open(
            mapper, DwarfBuilder(schema()).build(BATCHES[0])
        )
        maintainer.append(BATCHES[1])
        reference = rebuild(2)
        assert maintainer.value("a", 1, "x") == reference.value(("a", 1, "x"))
        assert maintainer.value(ALL, ALL, ALL) == reference.total()

    def test_compacted_ids_are_never_reissued(self, mapper_cls):
        mapper = installed(mapper_cls)
        maintainer = CubeMaintainer.open(
            mapper, DwarfBuilder(schema()).build(BATCHES[0])
        )
        maintainer.append(BATCHES[1])
        maintainer.merge()
        retired = set(maintainer.view().retired_ids)
        maintainer.compact()
        maintainer.append(BATCHES[2])
        view = maintainer.view()
        assert not (set(view.delta_ids) & retired)
        assert view.base_id not in retired


@pytest.mark.parametrize("mapper_cls", ALL_MAPPERS, ids=lambda cls: cls.name)
class TestEpochRow:
    def test_plain_stored_cubes_resolve_to_none(self, mapper_cls):
        mapper = installed(mapper_cls)
        physical = mapper.store(
            DwarfBuilder(schema()).build(BATCHES[0]), is_cube=True
        )
        assert resolve_epoch(mapper, physical) is None
        # And the query path keeps direct physical-id semantics.
        assert stored_point_query(mapper, physical, (ALL, ALL, ALL)) == (
            rebuild(1).total()
        )

    def test_recover_clears_unregistered_intent(self, mapper_cls):
        from repro.mapping.incremental import _update_epoch_row, require_epoch

        mapper = installed(mapper_cls)
        maintainer = CubeMaintainer.open(
            mapper, DwarfBuilder(schema()).build(BATCHES[0])
        )
        view = require_epoch(mapper, maintainer.logical_id)
        view.pending_id = 999  # intent recorded, store never started
        _update_epoch_row(mapper, view)

        recovered = recover_epoch(mapper, maintainer.logical_id)
        assert recovered.pending_id == 0
        assert recovered.retired_ids == ()
        assert_answers(mapper, maintainer.logical_id, rebuild(1))

def test_resolve_merge_deltas_env(monkeypatch):
    monkeypatch.delenv("REPRO_MERGE_DELTAS", raising=False)
    assert resolve_merge_deltas() == 4
    monkeypatch.setenv("REPRO_MERGE_DELTAS", "2")
    assert resolve_merge_deltas() == 2
    assert resolve_merge_deltas(6) == 6
    monkeypatch.setenv("REPRO_MERGE_DELTAS", "junk")
    assert resolve_merge_deltas() == 4


class TestOverlayQueries:
    """NoSQL-DWARF-only read paths over the pre-merge overlay."""

    def setup_method(self):
        self.mapper = installed(NoSQLDwarfMapper)
        self.maintainer = CubeMaintainer.open(
            self.mapper, DwarfBuilder(schema()).build(BATCHES[0])
        )
        self.maintainer.append(BATCHES[1])
        self.maintainer.append(BATCHES[2])
        self.reference = rebuild(3)

    def test_stored_select_overlay_matches_memory_walk(self):
        for strategy in ("walk", "scan"):
            got = list(
                stored_select(
                    self.mapper, self.maintainer.logical_id,
                    strategy=strategy, d1=Each(), d2=Member(2),
                )
            )
            assert got == list(memory_select(self.reference, d1=Each(), d2=Member(2)))

    def test_stored_select_order_survives_the_flip(self):
        before = list(
            stored_select(self.mapper, self.maintainer.logical_id, d1=Each())
        )
        self.maintainer.merge()
        after = list(
            stored_select(self.mapper, self.maintainer.logical_id, d1=Each())
        )
        assert before == after

    def test_stored_cell_count_sums_the_overlay(self):
        logical_id = self.maintainer.logical_id
        overlay_total = stored_cell_count(self.mapper, logical_id)
        view = self.maintainer.view()
        per_cube = sum(
            len(list(self.mapper.session.execute(
                "SELECT id FROM dwarf_cell WHERE schema_id = ? ALLOW FILTERING",
                (physical,),
            )))
            for physical in view.cube_ids
        )
        assert overlay_total == per_cube
        self.maintainer.merge()
        assert stored_cell_count(self.mapper, logical_id) < overlay_total


class TestPlanCacheKeying:
    """Satellite fix: stored-query kernel plans must key on the shard
    layout and the cube epoch, not on statement text alone."""

    def _stored_keys(self, mapper):
        return [
            key
            for key, _plan in mapper.session.plan_cache.entries()
            if isinstance(key, tuple) and any(
                isinstance(part, str) and part.startswith("stored:")
                for part in key
            )
        ]

    def test_epoch_flip_rekeys_kernel_plans(self):
        mapper = installed(NoSQLDwarfMapper)
        maintainer = CubeMaintainer.open(
            mapper, DwarfBuilder(schema()).build(BATCHES[0])
        )
        stored_point_query(mapper, maintainer.logical_id, ("a", 1, "x"))
        before = set(self._stored_keys(mapper))
        assert before

        maintainer.append(BATCHES[1])
        maintainer.merge()  # bumps mapper.cube_epoch
        stored_point_query(mapper, maintainer.logical_id, ("a", 1, "x"))
        after = set(self._stored_keys(mapper))
        assert after - before, "post-flip query must build a fresh plan key"

    def test_shard_layout_is_part_of_the_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        mapper = installed(NoSQLDwarfMapper)
        physical = mapper.store(
            DwarfBuilder(schema()).build(BATCHES[0]), is_cube=True
        )
        expected = rebuild(1).total()
        assert stored_point_query(mapper, physical, (ALL, ALL, ALL)) == expected
        single = set(self._stored_keys(mapper))

        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert stored_point_query(mapper, physical, (ALL, ALL, ALL)) == expected
        sharded = set(self._stored_keys(mapper))
        assert sharded - single, (
            "changing REPRO_SHARDS must not serve plans cached under the "
            "previous shard layout"
        )

    def test_guards_reject_a_changed_shard_count(self):
        mapper = installed(NoSQLDwarfMapper)
        physical = mapper.store(
            DwarfBuilder(schema()).build(BATCHES[0]), is_cube=True
        )
        assert stored_point_query(mapper, physical, ("a", 1, "x")) is not None
        table = mapper.engine.keyspace(mapper.keyspace_name).table("dwarf_cell")
        original = getattr(table, "shard_count", 1)
        try:
            table.shard_count = original + 3
            # Guarded plans must revalidate and rebuild, not walk stale
            # fanout assumptions; answers stay correct either way.
            assert stored_point_query(mapper, physical, ("a", 1, "x")) == (
                rebuild(1).value(("a", 1, "x"))
            )
        finally:
            table.shard_count = original
