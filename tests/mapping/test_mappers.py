"""All four storage mappers: store, info, size, bi-directional reload.

Parametrised over the paper's four schemas so every mapper satisfies the
same contract; schema-specific behaviour is tested separately below.
"""

import pytest

from repro.dwarf.builder import build_cube
from repro.dwarf.cell import ALL
from repro.mapping.base import MappingError
from repro.mapping.mysql_dwarf import MySQLDwarfMapper
from repro.mapping.mysql_min import MySQLMinMapper
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.nosql_min import NoSQLMinMapper
from repro.mapping.registry import MAPPER_FACTORIES, all_mappers, make_mapper

from tests.conftest import SAMPLE_ROWS

ALL_MAPPERS = [MySQLDwarfMapper, MySQLMinMapper, NoSQLDwarfMapper, NoSQLMinMapper]


@pytest.fixture(params=ALL_MAPPERS, ids=lambda cls: cls.name)
def mapper(request):
    instance = request.param()
    instance.install()
    return instance


class TestMapperContract:
    def test_store_returns_id_one(self, mapper, sample_cube):
        assert mapper.store(sample_cube) == 1

    def test_sequential_schema_ids(self, mapper, sample_cube):
        assert mapper.store(sample_cube) == 1
        assert mapper.store(sample_cube) == 2

    def test_info_counts(self, mapper, sample_cube):
        schema_id = mapper.store(sample_cube)
        info = mapper.info(schema_id)
        stats = sample_cube.stats
        assert info.node_count == stats.node_count
        assert info.cell_count == stats.cell_count

    def test_info_unknown_id(self, mapper):
        with pytest.raises(MappingError):
            mapper.info(42)

    def test_store_before_install_rejected(self, sample_cube):
        for factory in MAPPER_FACTORIES.values():
            with pytest.raises(MappingError, match="install"):
                factory().store(sample_cube)

    def test_roundtrip_identical(self, mapper, sample_cube):
        schema_id = mapper.store(sample_cube)
        rebuilt = mapper.load(schema_id)
        assert sorted(rebuilt.leaves()) == sorted(sample_cube.leaves())
        assert rebuilt.total() == sample_cube.total()
        assert rebuilt.value(["Ireland", "Dublin", ALL]) == 8
        assert rebuilt.stats.node_count == sample_cube.stats.node_count
        assert rebuilt.stats.cell_count == sample_cube.stats.cell_count

    def test_roundtrip_restores_schema_metadata(self, mapper, sample_cube):
        schema_id = mapper.store(sample_cube)
        rebuilt = mapper.load(schema_id)
        assert rebuilt.schema.dimension_names == sample_cube.schema.dimension_names
        assert rebuilt.schema.aggregator.name == "sum"

    def test_load_with_explicit_schema(self, mapper, sample_cube):
        schema_id = mapper.store(sample_cube)
        rebuilt = mapper.load(schema_id, schema=sample_cube.schema)
        assert rebuilt.schema is sample_cube.schema
        assert rebuilt.total() == sample_cube.total()

    def test_two_cubes_coexist(self, mapper, sample_cube, sample_schema):
        other = build_cube([("Spain", "Madrid", "Sol", 9)], sample_schema)
        first = mapper.store(sample_cube)
        second = mapper.store(other)
        assert mapper.load(first).total() == 17
        assert mapper.load(second).total() == 9

    def test_size_probe_writes_back(self, mapper, sample_cube):
        schema_id = mapper.store(sample_cube, probe_size=True)
        info = mapper.info(schema_id)
        assert info.size_as_mb >= 0  # the sample cube is < 1 MB (paper: "< 1")
        assert mapper.size_bytes() > 0

    def test_reset_clears(self, mapper, sample_cube):
        mapper.store(sample_cube)
        mapper.reset()
        with pytest.raises(MappingError):
            mapper.info(1)
        assert mapper.store(sample_cube) == 1

    def test_install_idempotent(self, mapper, sample_cube):
        mapper.install()
        mapper.install()
        assert mapper.store(sample_cube) == 1

    def test_mixed_member_types_roundtrip(self, mapper):
        from repro.core.schema import CubeSchema

        schema = CubeSchema("mixed", ["day", "hour", "flag"])
        cube = build_cube(
            [("2015-06-01", 8, True, 3), ("2015-06-01", 9, False, 4), ("2015-06-02", 8, True, 5)],
            schema,
        )
        rebuilt = mapper.load(mapper.store(cube))
        assert sorted(rebuilt.leaves()) == sorted(cube.leaves())
        assert rebuilt.value(hour=8) == 8


class TestRegistry:
    def test_factories_cover_paper_schemas(self):
        assert list(MAPPER_FACTORIES) == [
            "MySQL-DWARF", "MySQL-Min", "NoSQL-DWARF", "NoSQL-Min",
        ]

    def test_make_mapper_installs(self, sample_cube):
        mapper = make_mapper("NoSQL-DWARF")
        assert mapper.store(sample_cube) == 1

    def test_make_mapper_unknown(self):
        with pytest.raises(KeyError):
            make_mapper("Mongo-DWARF")

    def test_all_mappers(self):
        assert [m.name for m in all_mappers()] == list(MAPPER_FACTORIES)


class TestSchemaSpecifics:
    def test_nosql_dwarf_has_three_paper_column_families(self):
        mapper = NoSQLDwarfMapper()
        mapper.install()
        keyspace = mapper.engine.keyspace(mapper.keyspace_name)
        for table in ("dwarf_schema", "dwarf_node", "dwarf_cell"):
            assert keyspace.has_table(table)

    def test_nosql_dwarf_has_no_secondary_indexes(self, sample_cube):
        mapper = NoSQLDwarfMapper()
        mapper.install()
        mapper.store(sample_cube)
        keyspace = mapper.engine.keyspace(mapper.keyspace_name)
        assert all(not table.indexes for table in keyspace.tables)

    def test_nosql_min_has_two_secondary_indexes(self):
        mapper = NoSQLMinMapper()
        mapper.install()
        table = mapper.engine.keyspace(mapper.keyspace_name).table("dwarf_cell")
        assert {ix.column for ix in table.indexes} == {"parentNodeId", "childNodeId"}

    def test_nosql_min_stores_no_node_rows(self, sample_cube):
        mapper = NoSQLMinMapper()
        mapper.install()
        mapper.store(sample_cube)
        keyspace = mapper.engine.keyspace(mapper.keyspace_name)
        assert not keyspace.has_table("dwarf_node")

    def test_nosql_min_index_queries_work(self, sample_cube):
        """The indexes the schema pays for must actually serve queries."""
        mapper = NoSQLMinMapper()
        mapper.install()
        mapper.store(sample_cube)
        session = mapper.session
        entry = mapper._entry_node_id(
            [c for c in _min_cells(mapper)]
        )
        rows = session.execute(
            "SELECT * FROM dwarf_cell WHERE parentNodeId = ?", (entry,)
        )
        assert len(rows) == 3  # Ireland, France + root ALL cell

    def test_mysql_dwarf_link_tables_populated(self, sample_cube):
        mapper = MySQLDwarfMapper()
        mapper.install()
        mapper.store(sample_cube)
        stats = sample_cube.stats
        session = mapper.session
        n_children = session.execute("SELECT COUNT(*) FROM NODE_CHILDREN").one()["count"]
        n_pointers = session.execute("SELECT COUNT(*) FROM CELL_CHILDREN").one()["count"]
        assert n_children == stats.cell_count
        assert n_pointers == stats.cell_count - stats.leaf_cell_count

    def test_mysql_dwarf_join_query(self, sample_cube):
        mapper = MySQLDwarfMapper()
        mapper.install()
        mapper.store(sample_cube)
        rows = mapper.session.execute(
            "SELECT c.cell_key FROM NODE_CHILDREN nc JOIN CELL c ON nc.cell_id = c.id "
            "WHERE nc.node_id = 1"
        )
        keys = {r["c.cell_key"] for r in rows}
        assert "s:France" in keys and "s:Ireland" in keys

    def test_mysql_min_single_cell_table(self, sample_cube):
        mapper = MySQLMinMapper()
        mapper.install()
        mapper.store(sample_cube)
        database = mapper.engine.database(mapper.database_name)
        assert database.has_table("DWARF_CELL")
        assert not database.has_table("NODE")
        assert len(database.table("DWARF_CELL")) == sample_cube.stats.cell_count


def _min_cells(mapper):
    from repro.mapping.base import CellRecord

    rows = mapper.session.execute("SELECT * FROM dwarf_cell WHERE cubeid = 1 ALLOW FILTERING")
    return [
        CellRecord(
            cell_id=row["id"], key_text=row["name"], measure=row["item"],
            parent_node_id=row["parentNodeId"], pointer_node_id=row["childNodeId"],
            is_leaf=row["leaf"], is_root_cell=row["root"], dimension_table=None, level=0,
        )
        for row in rows
    ]
