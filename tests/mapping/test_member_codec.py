"""Member key codec — exotic float round trips.

Partition workers serialise first-dimension boundary members through
``encode_member``/``decode_member``; non-finite floats must survive the
trip (``f:inf``, ``f:-inf``, ``f:nan``) or stitched cubes would corrupt
keys that the in-memory builder handles fine.
"""

import math

import pytest

from repro.mapping.base import MappingError, decode_member, encode_member


@pytest.mark.parametrize(
    "value,expected",
    [
        (float("inf"), "f:inf"),
        (float("-inf"), "f:-inf"),
        (1.5, "f:1.5"),
        (-0.25, "f:-0.25"),
    ],
)
def test_float_encodings(value, expected):
    assert encode_member(value) == expected
    assert decode_member(expected) == value


def test_nan_round_trip_preserves_nanness():
    encoded = encode_member(float("nan"))
    assert encoded == "f:nan"
    decoded = decode_member(encoded)
    assert isinstance(decoded, float) and math.isnan(decoded)


def test_nan_encoding_is_canonical():
    # Any NaN payload (there are many bit patterns) encodes to one token.
    assert encode_member(float("nan") * -1) == "f:nan"


def test_finite_floats_round_trip_exactly():
    for value in (0.0, 1e-300, 1e300, 3.141592653589793, -2.5e-10):
        assert decode_member(encode_member(value)) == value


def test_malformed_float_payload_raises_mapping_error():
    with pytest.raises(MappingError):
        decode_member("f:not-a-float")


def test_int_and_text_unaffected():
    assert decode_member(encode_member(42)) == 42
    assert decode_member(encode_member("inf")) == "inf"  # text stays text
