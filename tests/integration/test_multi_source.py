"""Multi-source smart-city scenario: several feeds, one warehouse.

The paper's goal is "data cubes, fused from the multiple sources listed
above" — this exercises several services' cubes living side by side in
one NoSQL store, plus the hierarchy/subcube machinery over them.
"""

import pytest

from repro.core.pipeline import CubeConstructionPipeline
from repro.dwarf.hierarchy import DimensionHierarchy, rollup
from repro.dwarf.query import Member
from repro.dwarf.subcube import extract_subcube
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.nosqldb.engine import NoSQLEngine
from repro.smartcity.auctions import AuctionFeedGenerator, auctions_pipeline
from repro.smartcity.bikes import BikeFeedGenerator, bikes_pipeline
from repro.smartcity.carpark import CarParkFeedGenerator, carpark_pipeline
from repro.smartcity.city import CityModel
from repro.smartcity.sales import SalesFeedGenerator, sales_pipeline


@pytest.fixture(scope="module")
def warehouse():
    """One shared engine holding cubes from three different services."""
    city = CityModel(seed=99)
    engine = NoSQLEngine()
    mapper = NoSQLDwarfMapper(engine)

    stored = {}
    sources = {
        "bikes": (
            BikeFeedGenerator(city, n_stations=10).generate_documents(2, 200),
            bikes_pipeline(),
        ),
        "carparks": (
            CarParkFeedGenerator(city, n_carparks=5).generate_documents(1, 6),
            carpark_pipeline(),
        ),
        "sales": (
            SalesFeedGenerator(city, n_stores=4).generate_documents(2),
            sales_pipeline(),
        ),
    }
    for name, (documents, etl) in sources.items():
        pipeline = CubeConstructionPipeline(etl, mapper)
        report = pipeline.run(documents)
        stored[name] = (report, pipeline)
    return engine, mapper, stored


class TestCoexistence:
    def test_three_schemas_registered(self, warehouse):
        _, mapper, stored = warehouse
        ids = [report.schema_id for report, _ in stored.values()]
        assert ids == [1, 2, 3]
        assert len(mapper.list_schemas()) == 3

    def test_each_reloads_with_its_own_dimensions(self, warehouse):
        _, mapper, stored = warehouse
        bikes = mapper.load(stored["bikes"][0].schema_id)
        sales = mapper.load(stored["sales"][0].schema_id)
        assert "station" in bikes.schema.dimension_names
        assert "product_line" in sales.schema.dimension_names
        assert bikes.total() == stored["bikes"][1].last_cube.total()
        assert sales.total() == stored["sales"][1].last_cube.total()

    def test_ids_do_not_collide(self, warehouse):
        engine, _, _ = warehouse
        session = engine.connect("dwarf_warehouse")
        count = session.execute("SELECT COUNT(*) FROM dwarf_cell").one()["count"]
        ids = {row["id"] for row in session.execute("SELECT id FROM dwarf_cell")}
        assert len(ids) == count


class TestDerivedCubes:
    def test_subcube_stored_with_is_cube_flag(self, warehouse):
        _, mapper, stored = warehouse
        bikes = stored["bikes"][1].last_cube
        day = bikes.members("day")[0]
        sub = extract_subcube(bikes, day=Member(day))
        sub_id = mapper.store(sub, is_cube=True)
        assert mapper.info(sub_id).is_cube
        assert mapper.load(sub_id).total() == bikes.value(day=day)

    def test_rollup_stations_to_district_matches_district_dim(self, warehouse):
        _, _, stored = warehouse
        bikes = stored["bikes"][1].last_cube
        # Build station→district mapping from the generator's city model.
        city = CityModel(seed=99)
        stations = city.bike_stations(10)
        hierarchy = DimensionHierarchy(
            "station", [("district", {s.name: s.district for s in stations})]
        )
        rolled = rollup(bikes, "station", hierarchy, "district")
        # "district" already exists in the bike schema, so the rolled-up
        # dimension is qualified as "station_district" — and must agree
        # with the native district dimension.
        assert "station_district" in rolled.schema.dimension_names
        for district in rolled.members("station_district"):
            assert rolled.value(station_district=district) == bikes.value(district=district)
