"""End-to-end integration: feed → ETL → DWARF → all four stores → queries."""

import pytest

from repro.core.pipeline import CubeConstructionPipeline
from repro.dwarf.cell import ALL
from repro.dwarf.query import Each, Member, select
from repro.mapping.registry import all_mappers
from repro.smartcity.bikes import BikeFeedGenerator, bikes_pipeline


@pytest.fixture(scope="module")
def feed():
    generator = BikeFeedGenerator(n_stations=18)
    return generator.generate_documents(days=3, total_records=900)


@pytest.fixture(scope="module")
def reference_cube(feed):
    return CubeConstructionPipeline(bikes_pipeline()).build(feed)


class TestFourSchemasAgree:
    def test_all_mappers_store_and_agree(self, feed, reference_cube):
        """The same cube through all four schemas answers identically."""
        totals = {}
        for mapper in all_mappers():
            pipeline = CubeConstructionPipeline(bikes_pipeline(), mapper)
            report = pipeline.run(feed)
            rebuilt = pipeline.reload(report.schema_id)
            totals[mapper.name] = rebuilt.total()
            assert sorted(rebuilt.leaves()) == sorted(reference_cube.leaves())
        assert len(set(totals.values())) == 1

    def test_sizes_ordered_like_table4(self, feed):
        """MySQL-DWARF must be the largest store (Table 4's robust shape)."""
        sizes = {}
        for mapper in all_mappers():
            pipeline = CubeConstructionPipeline(bikes_pipeline(), mapper)
            pipeline.run(feed)
            sizes[mapper.name] = mapper.size_bytes()
        assert sizes["MySQL-DWARF"] == max(sizes.values())
        assert sizes["NoSQL-Min"] > sizes["NoSQL-DWARF"]


class TestAnalyticalQueries:
    def test_daily_rhythm_query(self, reference_cube):
        by_daypart = dict(select(reference_cube, daypart=Each()))
        assert set(by_daypart) <= {
            ("night",), ("morning-peak",), ("daytime",), ("evening-peak",), ("evening",),
        }
        assert sum(by_daypart.values()) == reference_cube.total()

    def test_district_slice(self, reference_cube):
        districts = reference_cube.members("district")
        slices = [reference_cube.value(district=d) for d in districts]
        assert sum(slices) == reference_cube.total()

    def test_station_day_matrix(self, reference_cube):
        results = list(select(reference_cube, day=Each(), station=Each()))
        for coords, value in results[:50]:
            assert reference_cube.value({"day": coords[0], "station": coords[1]}) == value

    def test_weekday_functional_dependency_coalesces(self, reference_cube):
        """day fixes weekday, so (day, weekday-ALL) equals (day, weekday)."""
        day = reference_cube.members("day")[0]
        weekday = next(
            coords[1] for coords, _ in select(
                reference_cube, day=Member(day), weekday=Each(),
            )
        )
        assert reference_cube.value(day=day) == reference_cube.value(
            {"day": day, "weekday": weekday}
        )
