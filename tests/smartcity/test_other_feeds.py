"""The secondary feeds: car parks, air quality, auctions, sales."""

import pytest

from repro.dwarf.builder import build_cube
from repro.smartcity.airquality import AirQualityFeedGenerator, airquality_pipeline
from repro.smartcity.auctions import AuctionFeedGenerator, auctions_pipeline
from repro.smartcity.carpark import CarParkFeedGenerator, carpark_pipeline
from repro.smartcity.sales import SalesFeedGenerator, sales_pipeline


class TestCarParks:
    def test_feed_to_cube(self):
        docs = CarParkFeedGenerator(n_carparks=6).generate_documents(days=1, snapshots_per_day=4)
        facts = carpark_pipeline().extract(docs)
        assert len(facts) == 6 * 4
        cube = build_cube(facts)
        assert cube.total() > 0

    def test_occupancy_within_spaces(self):
        import datetime as dt

        gen = CarParkFeedGenerator(n_carparks=4)
        for carpark in gen.carparks:
            for hour in range(0, 24, 4):
                taken = gen.occupancy(carpark, dt.datetime(2015, 6, 2, hour))
                assert 0 <= taken <= carpark.spaces

    def test_deterministic(self):
        from repro.smartcity.city import CityModel

        a = CarParkFeedGenerator(CityModel(3)).generate_documents(1, 2)
        b = CarParkFeedGenerator(CityModel(3)).generate_documents(1, 2)
        assert [d.content for d in a] == [d.content for d in b]


class TestAirQuality:
    def test_feed_to_avg_cube(self):
        gen = AirQualityFeedGenerator(n_sensors=4)
        docs = gen.generate_documents(days=1, snapshots_per_day=4)
        facts = airquality_pipeline().extract(docs)
        assert len(facts) == 4 * 4 * 4  # sensors x pollutants x snapshots
        cube = build_cube(facts)
        assert cube.schema.aggregator.name == "avg"
        total = cube.total()
        assert isinstance(total, float) and total > 0

    def test_pollutant_members(self):
        gen = AirQualityFeedGenerator(n_sensors=2)
        docs = gen.generate_documents(days=1, snapshots_per_day=2)
        cube = build_cube(airquality_pipeline().extract(docs))
        assert set(cube.members("pollutant")) == {"no2", "pm10", "pm25", "o3"}


class TestAuctions:
    def test_feed_to_cube(self):
        docs = AuctionFeedGenerator().generate_documents(days=2, lots_per_day=30)
        facts = auctions_pipeline().extract(docs)
        assert len(facts) == 60
        cube = build_cube(facts)
        assert set(cube.members("day")) == {"2015-06-01", "2015-06-02"}

    def test_prices_positive(self):
        docs = AuctionFeedGenerator().generate_documents(days=1, lots_per_day=50)
        facts = auctions_pipeline().extract(docs)
        assert all(f.measure > 0 for f in facts)


class TestSales:
    def test_feed_to_cube(self):
        gen = SalesFeedGenerator(n_stores=3)
        docs = gen.generate_documents(days=2)
        facts = sales_pipeline().extract(docs)
        assert len(facts) == 3 * 5 * 2  # stores x product lines x days
        cube = build_cube(facts)
        assert cube.value(product_line="grocery") > 0

    def test_xml_context_date_applied(self):
        gen = SalesFeedGenerator(n_stores=2)
        docs = gen.generate_documents(days=1)
        facts = sales_pipeline().extract(docs)
        assert all(f.keys[0] == "2015-06-01" for f in facts)
