"""Shared city model: determinism and helpers."""

import pytest

from repro.smartcity.city import CityModel, capacity_bucket, daypart


class TestCityModel:
    def test_stations_deterministic(self):
        a = CityModel(seed=5).bike_stations(30)
        b = CityModel(seed=5).bike_stations(30)
        assert [(s.number, s.name, s.district, s.capacity) for s in a] == [
            (s.number, s.name, s.district, s.capacity) for s in b
        ]

    def test_station_names_unique(self):
        stations = CityModel().bike_stations(102)
        names = [s.name for s in stations]
        assert len(set(names)) == len(names)

    def test_street_names_unique(self):
        names = CityModel().street_names(150, "test")
        assert len(set(names)) == 150

    def test_independent_streams(self):
        city = CityModel()
        assert city.rng("a").random() != city.rng("b").random()

    def test_districts_nonempty(self):
        assert len(CityModel().districts) >= 10

    def test_station_fields_plausible(self):
        for station in CityModel().bike_stations(20):
            assert station.capacity >= 15
            assert 53.0 < station.latitude < 54.0
            assert -7.0 < station.longitude < -6.0


class TestDaypart:
    @pytest.mark.parametrize(
        "hour,expected",
        [
            (0, "night"), (6, "night"), (8, "morning-peak"),
            (12, "daytime"), (17, "evening-peak"), (22, "evening"),
        ],
    )
    def test_buckets(self, hour, expected):
        assert daypart(hour) == expected

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            daypart(24)


class TestCapacityBucket:
    @pytest.mark.parametrize(
        "capacity,expected", [(15, "small"), (20, "small"), (25, "medium"), (40, "large")]
    )
    def test_buckets(self, capacity, expected):
        assert capacity_bucket(capacity) == expected
