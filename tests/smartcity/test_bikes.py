"""Bike-share feed generator: determinism, record counts, cube wiring."""

import pytest

from repro.dwarf.builder import build_cube
from repro.smartcity.bikes import (
    BikeFeedGenerator,
    bikes_mapping,
    bikes_pipeline,
    bikes_schema,
)
from repro.smartcity.city import CityModel


@pytest.fixture(scope="module")
def generator():
    return BikeFeedGenerator(n_stations=20)


class TestGeneration:
    def test_exact_record_count(self, generator):
        docs = generator.generate_documents(days=1, total_records=137)
        facts = bikes_pipeline().extract(docs)
        assert len(facts) == 137

    def test_partial_final_snapshot(self, generator):
        # 137 = 6 full snapshots of 20 + one partial of 17
        docs = list(generator.generate_documents(days=1, total_records=137))
        from repro.etl.xml_source import count_xml_records

        counts = [count_xml_records(d, "station") for d in docs]
        assert counts[:-1] == [20] * 6
        assert counts[-1] == 17

    def test_deterministic_across_instances(self):
        a = BikeFeedGenerator(CityModel(seed=1), n_stations=10)
        b = BikeFeedGenerator(CityModel(seed=1), n_stations=10)
        docs_a = [d.content for d in a.generate_documents(1, 50)]
        docs_b = [d.content for d in b.generate_documents(1, 50)]
        assert docs_a == docs_b

    def test_different_seeds_differ(self):
        a = BikeFeedGenerator(CityModel(seed=1), n_stations=10)
        b = BikeFeedGenerator(CityModel(seed=2), n_stations=10)
        assert [d.content for d in a.generate_documents(1, 50)] != [
            d.content for d in b.generate_documents(1, 50)
        ]

    def test_availability_within_capacity(self, generator):
        import datetime as dt

        for station in generator.stations:
            for hour in range(0, 24, 3):
                when = dt.datetime(2015, 6, 3, hour)
                bikes = generator.availability(station, when)
                assert 0 <= bikes <= station.capacity

    def test_json_format(self, generator):
        docs = generator.generate_documents(days=1, total_records=40, content_type="json")
        facts = bikes_pipeline().extract(docs)
        assert len(facts) == 40

    def test_bad_content_type(self, generator):
        with pytest.raises(ValueError):
            generator.generate_documents(1, 10, content_type="csv")

    def test_snapshot_times_span_period(self, generator):
        times = generator.snapshot_times(days=2, total_records=200)
        assert times[0].day == 1
        assert (times[-1] - times[0]).total_seconds() <= 2 * 86400

    def test_record_density_near_paper(self, generator):
        """Table 2: Day = 2.1 MB / 7358 tuples ≈ 300 B per record."""
        docs = generator.generate_documents(days=1, total_records=400).batch()
        per_record = docs.size_bytes / 400
        assert 250 <= per_record <= 450


class TestCubeWiring:
    def test_schema_has_eight_dimensions(self):
        assert bikes_schema().n_dimensions == 8

    def test_mapping_produces_valid_tuples(self, generator):
        docs = generator.generate_documents(days=1, total_records=60)
        facts = bikes_pipeline().extract(docs)
        fact = facts[0]
        day, weekday, daypart, hour, district, station, status, size = fact.keys
        assert day == "2015-06-01"
        assert weekday == "Monday"
        assert 0 <= hour <= 23
        assert status in ("OPEN", "CLOSED")
        assert size in ("small", "medium", "large")
        assert isinstance(fact.measure, int)

    def test_functional_dependencies_hold(self, generator):
        """station→district and day→weekday must be functions (drives
        suffix coalescing)."""
        docs = generator.generate_documents(days=3, total_records=300)
        facts = bikes_pipeline().extract(docs)
        station_district = {}
        day_weekday = {}
        for fact in facts:
            day, weekday, _, _, district, station, _, _ = fact.keys
            assert station_district.setdefault(station, district) == district
            assert day_weekday.setdefault(day, weekday) == weekday

    def test_cube_builds_from_feed(self, generator):
        docs = generator.generate_documents(days=1, total_records=100)
        facts = bikes_pipeline().extract(docs)
        cube = build_cube(facts)
        assert cube.total() == sum(f.measure for f in facts)
