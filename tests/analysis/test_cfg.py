"""Golden-shape tests for the per-function CFG builder."""

import ast
import textwrap

import pytest

from repro.analysis.cfg import (
    BACK,
    EXCEPT,
    NORMAL,
    build_cfg,
    dominators,
    dotted_name,
    functions_in,
)


def cfg_of(source):
    func = ast.parse(textwrap.dedent(source)).body[0]
    return build_cfg(func)


class TestGoldenShapes:
    def test_loop_with_break(self):
        cfg = cfg_of(
            """
            def f(xs):
                total = 0
                for x in xs:
                    if x < 0:
                        break
                    total += x
                return total
            """
        )
        assert cfg.describe() == "\n".join([
            "B0 entry(1) -> B2",
            "B1 exit(0)",
            "B2 for.header(1) -> B4, B3",
            "B3 for.after(1) -> B1",
            "B4 for.body(1) -> B5, B6",
            "B5 if.then(1) -> B3",       # break jumps to for.after
            "B6 if.join(1) -> B2(back)",  # loop back edge
        ])

    def test_try_finally_routes_return(self):
        cfg = cfg_of(
            """
            def f(path):
                fh = acquire(path)
                try:
                    return read(fh)
                finally:
                    release(fh)
            """
        )
        # The return flows *through* the finally block to the exit.
        assert cfg.describe() == "\n".join([
            "B0 entry(1) -> B3",
            "B1 exit(0)",
            "B2 finally(1) -> B1",
            "B3 try.body(1) -> B2",
        ])

    def test_with_body_is_its_own_block(self):
        cfg = cfg_of(
            """
            def f(self):
                with self._lock:
                    self.n += 1
                return self.n
            """
        )
        assert cfg.describe() == "\n".join([
            "B0 entry(1) -> B2",
            "B1 exit(0)",
            "B2 with.body(1) -> B3",
            "B3 with.after(1) -> B1",
        ])
        body = cfg.blocks[2]
        assert body.with_contexts == ("self._lock",)
        assert cfg.blocks[0].with_contexts == ()

    def test_nested_ifs(self):
        cfg = cfg_of(
            """
            def f(a, b):
                if a:
                    if b:
                        r = 1
                    else:
                        r = 2
                else:
                    r = 3
                return r
            """
        )
        assert cfg.describe() == "\n".join([
            "B0 entry(1) -> B2, B6",
            "B1 exit(0)",
            "B2 if.then(1) -> B3, B4",
            "B3 if.then(1) -> B5",
            "B4 if.else(1) -> B5",
            "B5 if.join(0) -> B7",
            "B6 if.else(1) -> B7",
            "B7 if.join(1) -> B1",
        ])

    def test_early_return(self):
        cfg = cfg_of(
            """
            def f(x):
                if x is None:
                    return 0
                y = x + 1
                return y
            """
        )
        assert cfg.describe() == "\n".join([
            "B0 entry(1) -> B2, B3",
            "B1 exit(0)",
            "B2 if.then(1) -> B1",
            "B3 if.join(2) -> B1",
        ])


class TestEdgesAndMapping:
    def test_try_except_edges(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    fallback()
                done()
            """
        )
        body = next(b for b in cfg.blocks if b.label == "try.body")
        handler = next(b for b in cfg.blocks if b.label == "except")
        kinds = {e.kind for e in body.edges if e.target is handler}
        assert kinds == {EXCEPT}
        # The exception edge is invisible to NORMAL-only traversals.
        assert handler not in body.successors([NORMAL])
        assert handler in body.successors([EXCEPT])

    def test_block_of_maps_statements(self):
        source = textwrap.dedent(
            """
            def f(x):
                y = x + 1
                while y:
                    y -= 1
                return y
            """
        )
        func = ast.parse(source).body[0]
        cfg = build_cfg(func)
        assign = func.body[0]
        loop_body_stmt = func.body[1].body[0]
        assert cfg.block_of(assign) is cfg.entry
        assert cfg.block_of(loop_body_stmt).label == "while.body"

    def test_continue_is_back_edge(self):
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    if x:
                        continue
                    use(x)
            """
        )
        header = next(b for b in cfg.blocks if b.label == "for.header")
        back_preds = [
            b for b in cfg.blocks
            if any(e.target is header and e.kind == BACK for e in b.edges)
        ]
        assert len(back_preds) == 2  # continue + natural loop end

    def test_raise_targets_handler(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    raise ValueError("x")
                except ValueError:
                    return 1
            """
        )
        body = next(b for b in cfg.blocks if b.label == "try.body")
        handler = next(b for b in cfg.blocks if b.label == "except")
        assert handler in body.successors([EXCEPT])
        # No normal fall-through out of an always-raising body.
        assert cfg.exit not in body.successors([NORMAL])

    def test_build_cfg_rejects_non_functions(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1"))

    def test_functions_in_finds_nested(self):
        tree = ast.parse(
            "def a():\n    def b():\n        pass\nclass C:\n"
            "    def m(self):\n        pass\n")
        assert sorted(f.name for f in functions_in(tree)) == ["a", "b", "m"]

    def test_dotted_name(self):
        expr = ast.parse("self._pool.get()", mode="eval").body
        assert dotted_name(expr) == "self._pool.get()"
        assert dotted_name(ast.parse("x[0]", mode="eval").body) is None


class TestDominators:
    def test_with_entry_dominates_body(self):
        cfg = cfg_of(
            """
            def f(self):
                with self._lock:
                    self.n += 1
            """
        )
        doms = dominators(cfg)
        body = next(b for b in cfg.blocks if b.label == "with.body")
        assert cfg.entry in doms[body]

    def test_branch_does_not_dominate_join(self):
        cfg = cfg_of(
            """
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        doms = dominators(cfg)
        then_block = next(b for b in cfg.blocks if b.label == "if.then")
        join = next(b for b in cfg.blocks if b.label == "if.join")
        assert then_block not in doms[join]
        assert cfg.entry in doms[join]
