"""SSTable and column-family invariants, including injected corruption."""

from repro.analysis.sstable_check import columnfamily_check, sstable_check
from repro.nosqldb.columnfamily import Column, ColumnFamily
from repro.nosqldb.commitlog import CommitLog
from repro.nosqldb.sstable import SSTable, SSTableStats
from repro.nosqldb.types import parse_type


def make_sstable(n=200, compressed=True, **kwargs) -> SSTable:
    return SSTable([(i, b"row%d" % i) for i in range(n)], compressed=compressed, **kwargs)


def make_family(n=50, commit_log=None) -> ColumnFamily:
    family = ColumnFamily(
        "cells",
        [
            Column("id", parse_type("int")),
            Column("label", parse_type("text")),
            Column("measure", parse_type("int")),
        ],
        primary_key="id",
        commit_log=commit_log,
    )
    family.create_index("cells_label", "label")
    for i in range(n):
        family.insert({"id": i, "label": f"m{i % 7}", "measure": i})
    return family


def rules_of(report):
    return {violation.rule for violation in report.violations}


class TestCleanTables:
    def test_compressed_table_passes(self):
        report = sstable_check(make_sstable())
        assert report.ok, "\n".join(report.format_lines())
        assert report.n_checks > 0

    def test_uncompressed_table_passes(self):
        assert sstable_check(make_sstable(compressed=False)).ok

    def test_on_disk_table_passes(self, tmp_path):
        table = make_sstable(path=tmp_path / "cells-1-Data.db")
        assert sstable_check(table).ok


class TestCorruption:
    def test_corrupt_block_flagged(self):
        # Satellite check: hand-corrupt a stored block; the checker must
        # notice instead of silently decoding garbage.
        table = make_sstable()
        table._blocks[0] = b"\x00not a zlib stream"
        assert "sstable.corrupt-block" in rules_of(sstable_check(table))

    def test_truncated_block_flagged(self):
        table = make_sstable(compressed=False)
        table._blocks[0] = table._blocks[0][:-3]
        assert "sstable.corrupt-block" in rules_of(sstable_check(table))

    def test_wrong_row_count_flagged(self):
        table = make_sstable()
        table._n_rows += 1
        assert "sstable.row-count" in rules_of(sstable_check(table))

    def test_wrong_block_index_flagged(self):
        table = make_sstable()
        assert len(table._block_keys) >= 2
        table._block_keys[1] = -42
        report = sstable_check(table)
        assert rules_of(report) & {"sstable.block-index", "sstable.block-order"}


class TestColumnFamily:
    def test_unflushed_family_passes(self):
        report = columnfamily_check(make_family())
        assert report.ok, "\n".join(report.format_lines())

    def test_flushed_family_passes(self):
        family = make_family()
        family.flush()
        assert columnfamily_check(family).ok

    def test_commitlog_agreement(self):
        log = CommitLog()
        family = make_family(commit_log=log)
        assert columnfamily_check(family).ok
        # A memtable write that skipped the log: replay would lose it.
        family._memtable.put(999, family.encode_row({"id": 999, "measure": 1}))
        assert "sstable.commitlog-agreement" in rules_of(columnfamily_check(family))

    def test_index_agreement(self):
        family = make_family()
        family.flush()
        family._indexes["label"]._tree.insert(("zz", 999), None)
        assert "sstable.index-agreement" in rules_of(columnfamily_check(family))


class TestStats:
    def test_stats_match_structure(self):
        table = make_sstable()
        stats = table.stats()
        assert isinstance(stats, SSTableStats)
        assert stats.rows == len(table) == 200
        assert stats.blocks == len(table._block_keys)
        assert stats.size_bytes == table.size_bytes
        assert not stats.on_disk
        assert stats.rows_per_block > 0

    def test_on_disk_stats(self, tmp_path):
        table = make_sstable(path=tmp_path / "cells-1-Data.db")
        stats = table.stats()
        assert stats.on_disk
        assert stats.data_bytes > 0

    def test_repr(self):
        assert repr(make_sstable()).startswith("SSTable(rows=200")
