"""The `repro check` CLI gate."""

from repro.cli import main


def test_check_lint_exits_zero(capsys):
    assert main(["check", "--lint"]) == 0
    out = capsys.readouterr().out
    assert "lint:" in out
    assert "check: OK" in out


def test_check_invariants_day_exits_zero(capsys):
    assert main(["check", "--invariants", "Day"]) == 0
    out = capsys.readouterr().out
    assert "dwarf_check" in out
    assert "build_equivalence" in out
    assert "check: OK" in out


def test_check_unknown_dataset_exits_nonzero(capsys):
    assert main(["check", "--invariants", "Nope"]) == 1
    assert "check: FAILED" in capsys.readouterr().out


def test_check_rules_selection(capsys):
    assert main(["check", "--lint", "--rules", "REPRO001,REPRO008"]) == 0
    out = capsys.readouterr().out
    assert "lint:" in out and "check: OK" in out


def test_check_exclude_rules(capsys):
    assert main(["check", "--lint", "--exclude-rules", "REPRO012"]) == 0
    assert "check: OK" in capsys.readouterr().out


def test_check_unknown_rule_exits_two(capsys):
    assert main(["check", "--lint", "--rules", "REPRO999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_check_format_json(capsys):
    import json

    assert main(["check", "--lint", "--format", "json"]) == 0
    out = capsys.readouterr().out
    payload = out[out.index("{"):out.rindex("}") + 1]
    doc = json.loads(payload)
    assert doc["ok"] is True and doc["n_checks"] > 0


def test_check_format_sarif_to_file(tmp_path, capsys):
    import json

    out_file = tmp_path / "findings.sarif"
    assert main(["check", "--lint", "--format", "sarif",
                 "--out", str(out_file)]) == 0
    capsys.readouterr()
    doc = json.loads(out_file.read_text(encoding="utf-8"))
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-check"


def test_check_baseline_gate(capsys):
    assert main(["check", "--lint", "--baseline",
                 "analysis-baseline.json"]) == 0
    out = capsys.readouterr().out
    assert "baseline: 0 new" in out
    assert "check: OK" in out


def test_check_write_baseline_roundtrip(tmp_path, capsys):
    from repro.analysis.baseline import load_baseline

    path = tmp_path / "baseline.json"
    assert main(["check", "--lint", "--write-baseline", str(path)]) == 0
    capsys.readouterr()
    assert sum(load_baseline(path).values()) == 0
