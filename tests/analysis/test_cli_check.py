"""The `repro check` CLI gate."""

from repro.cli import main


def test_check_lint_exits_zero(capsys):
    assert main(["check", "--lint"]) == 0
    out = capsys.readouterr().out
    assert "lint:" in out
    assert "check: OK" in out


def test_check_invariants_day_exits_zero(capsys):
    assert main(["check", "--invariants", "Day"]) == 0
    out = capsys.readouterr().out
    assert "dwarf_check" in out
    assert "build_equivalence" in out
    assert "check: OK" in out


def test_check_unknown_dataset_exits_nonzero(capsys):
    assert main(["check", "--invariants", "Nope"]) == 1
    assert "check: FAILED" in capsys.readouterr().out
