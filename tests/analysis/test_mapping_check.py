"""Mapping invariants: codec round-trips and store/load fidelity per schema."""

import pytest

import repro.analysis.mapping_check as mapping_check_module
from repro.analysis.mapping_check import mapping_check
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper


@pytest.mark.parametrize("schema_name", tuple(MAPPER_FACTORIES))
def test_every_mapper_round_trips(schema_name, sample_cube):
    mapper = make_mapper(schema_name)
    report = mapping_check(mapper, sample_cube)
    assert report.ok, "\n".join(report.format_lines())
    assert report.n_checks > 0


def test_lossy_member_codec_flagged(sample_cube, monkeypatch):
    original = mapping_check_module.decode_member

    def lossy(text):
        value = original(text)
        return value.upper() if isinstance(value, str) else value

    monkeypatch.setattr(mapping_check_module, "decode_member", lossy)
    report = mapping_check(make_mapper("NoSQL-DWARF"), sample_cube)
    assert any(v.rule == "mapping.member-codec" for v in report.violations)


def test_misreported_registry_counts_flagged(sample_cube):
    mapper = make_mapper("MySQL-DWARF")
    original = mapper.info

    def inflated(schema_id):
        info = original(schema_id)
        return info._replace(node_count=info.node_count + 1)

    mapper.info = inflated
    report = mapping_check(mapper, sample_cube)
    assert any(v.rule == "mapping.registry" for v in report.violations)
