"""Reaching-definitions goldens plus a fixpoint property on random programs."""

import ast
import textwrap

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    LiveVariables,
    ReachingDefinitions,
    assigned_names,
    solve,
    used_names,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def solved(source, problem_cls):
    func = ast.parse(textwrap.dedent(source)).body[0]
    cfg = build_cfg(func)
    problem = problem_cls(cfg)
    return cfg, problem, solve(cfg, problem)


class TestReachingDefinitions:
    def test_branch_merges_both_definitions(self):
        cfg, _, facts = solved(
            """
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
            """,
            ReachingDefinitions,
        )
        join = next(b for b in cfg.blocks if b.label == "if.join")
        reaching = {(d.name, d.lineno)
                    for d in facts[join.index].in_facts if d.name == "x"}
        assert reaching == {("x", 4), ("x", 6)}

    def test_redefinition_kills(self):
        cfg, _, facts = solved(
            """
            def f():
                x = 1
                x = 2
                return x
            """,
            ReachingDefinitions,
        )
        exit_in = facts[cfg.exit.index].in_facts
        assert {(d.name, d.lineno) for d in exit_in if d.name == "x"} == {
            ("x", 4)
        }

    def test_loop_definition_reaches_header(self):
        cfg, _, facts = solved(
            """
            def f(xs):
                total = 0
                for x in xs:
                    total = total + x
                return total
            """,
            ReachingDefinitions,
        )
        header = next(b for b in cfg.blocks if b.label == "for.header")
        linenos = {d.lineno for d in facts[header.index].in_facts
                   if d.name == "total"}
        assert linenos == {3, 5}  # initial def and the loop-carried def


class TestLiveVariables:
    def test_read_after_write_is_live(self):
        cfg, _, facts = solved(
            """
            def f(a):
                x = a + 1
                return x
            """,
            LiveVariables,
        )
        # Backward problem: out_facts is the transfer result = names live
        # *on entry to* the block in program order.
        assert "a" in facts[cfg.entry.index].out_facts
        # x is born and consumed inside the entry block run.
        assert "x" not in facts[cfg.entry.index].out_facts

    def test_dead_store(self):
        cfg, _, facts = solved(
            """
            def f(a):
                x = a
                x = 2
                return x
            """,
            LiveVariables,
        )
        # a feeds the dead store but is still read by it, so it is live
        # at function entry; nothing else is.
        assert "a" in facts[cfg.entry.index].out_facts
        assert "x" not in facts[cfg.entry.index].out_facts


class TestHelpers:
    def test_assigned_names_covers_fragments(self):
        stmt = ast.parse("a, (b, c) = read()").body[0]
        assert {name for name, _ in assigned_names(stmt)} == {"a", "b", "c"}
        aug = ast.parse("n += 1").body[0]
        assert {name for name, _ in assigned_names(aug)} == {"n"}

    def test_used_names_skips_stores(self):
        stmt = ast.parse("total = total + x").body[0]
        assert sorted(used_names(stmt)) == ["total", "x"]


# ----------------------------------------------------------------------
# Property: on arbitrary structured programs the solver reaches a true
# fixpoint — one more transfer round changes nothing — and every block
# gets a solution.
# ----------------------------------------------------------------------
_names = st.sampled_from(["a", "b", "c", "d"])


def _assign(depth):
    return st.builds(lambda t, v: f"{t} = {v}", _names,
                     st.integers(0, 9).map(str))


@st.composite
def _block(draw, depth):
    lines = draw(st.lists(_stmt(depth), min_size=1, max_size=3))
    return lines


def _indent(lines, by="    "):
    return [by + line for block in lines for line in block]


@st.composite
def _stmt(draw, depth):
    """One statement as a list of source lines."""
    options = [st.just(None)]
    choice = draw(st.integers(0, 4 if depth > 0 else 0))
    if choice == 0:
        return [draw(_assign(depth))]
    if choice == 1:
        body = draw(_block(depth - 1))
        orelse = draw(_block(depth - 1))
        return ([f"if {draw(_names)} > 2:"] + _indent(body)
                + ["else:"] + _indent(orelse))
    if choice == 2:
        body = draw(_block(depth - 1))
        return [f"for {draw(_names)} in range(3):"] + _indent(body)
    if choice == 3:
        body = draw(_block(depth - 1))
        final = draw(_block(depth - 1))
        return (["try:"] + _indent(body) + ["finally:"] + _indent(final))
    body = draw(_block(depth - 1))
    return [f"while {draw(_names)} > 1:"] + _indent(body)


@st.composite
def programs(draw):
    body = draw(st.lists(_stmt(2), min_size=1, max_size=4))
    lines = ["def f(a, b, c, d):"] + _indent(body) + ["    return a"]
    return "\n".join(lines)


@given(programs())
@settings(max_examples=60, deadline=None)
def test_reaching_definitions_fixpoint(source):
    func = ast.parse(source).body[0]
    cfg = build_cfg(func)
    problem = ReachingDefinitions(cfg)
    facts = solve(cfg, problem)
    # Every block is solved...
    assert set(facts) == {block.index for block in cfg.blocks}
    # ...and the solution is a genuine fixpoint: re-applying join and
    # transfer at every block reproduces the recorded facts.
    for block in cfg.blocks:
        preds = block.preds
        if preds:
            merged = problem.join([facts[p.index].out_facts for p in preds])
            if block is cfg.entry:
                merged = problem.join([merged, problem.boundary()])
            assert merged == facts[block.index].in_facts
        out = problem.transfer(block, facts[block.index].in_facts)
        assert out == facts[block.index].out_facts
        # gen/kill monotonicity: out facts grow with in facts.
        bigger = problem.transfer(
            block,
            facts[block.index].in_facts | frozenset({("sentinel", -1, -1)}),
        )
        assert out <= bigger
