"""Baseline load/apply/write semantics."""

import json

import pytest

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.violations import CheckReport


def report_with(*findings):
    report = CheckReport("lint")
    for rule, location, message in findings:
        report.check(False, "lint", rule, location, message)
    return report


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        report = report_with(
            ("REPRO001", "src/a.py:10", "mutable default"),
            ("REPRO009", "src/b.py:20", "leaked handle"),
        )
        path = tmp_path / "baseline.json"
        write_baseline(path, report)
        baseline = load_baseline(path)
        result = apply_baseline(report, baseline)
        assert result.new == []
        assert len(result.known) == 2
        assert result.stale == []

    def test_empty_baseline_marks_all_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, CheckReport("lint"))
        report = report_with(("REPRO001", "src/a.py:10", "mutable default"))
        result = apply_baseline(report, load_baseline(path))
        assert len(result.new) == 1
        assert result.known == []

    def test_committed_baseline_is_empty_and_loads(self):
        from pathlib import Path

        committed = Path(__file__).resolve().parents[2] / (
            "analysis-baseline.json")
        baseline = load_baseline(committed)
        assert sum(baseline.values()) == 0


class TestMatching:
    def test_line_drift_still_matches(self, tmp_path):
        old = report_with(("REPRO001", "src/a.py:10", "mutable default"))
        path = tmp_path / "baseline.json"
        write_baseline(path, old)
        drifted = report_with(("REPRO001", "src/a.py:99", "mutable default"))
        result = apply_baseline(drifted, load_baseline(path))
        assert result.new == []
        assert len(result.known) == 1

    def test_message_change_is_new(self, tmp_path):
        old = report_with(("REPRO001", "src/a.py:10", "mutable default"))
        path = tmp_path / "baseline.json"
        write_baseline(path, old)
        changed = report_with(("REPRO001", "src/a.py:10", "other message"))
        result = apply_baseline(changed, load_baseline(path))
        assert len(result.new) == 1
        assert len(result.stale) == 1

    def test_multiset_consumption(self, tmp_path):
        # Two identical findings need two baseline entries.
        twice = report_with(
            ("REPRO001", "src/a.py:10", "mutable default"),
            ("REPRO001", "src/a.py:30", "mutable default"),
        )
        path = tmp_path / "baseline.json"
        write_baseline(path, report_with(
            ("REPRO001", "src/a.py:10", "mutable default")))
        result = apply_baseline(twice, load_baseline(path))
        assert len(result.new) == 1
        assert len(result.known) == 1

    def test_stale_entries_surface(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, report_with(
            ("REPRO001", "src/a.py:10", "mutable default")))
        result = apply_baseline(CheckReport("lint"), load_baseline(path))
        assert result.stale == [{
            "rule": "REPRO001", "path": "src/a.py",
            "message": "mutable default",
        }]


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(tmp_path / "nope.json")

    def test_bad_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_malformed_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"version": 1, "findings": [{"rule": "REPRO001"}]}))
        with pytest.raises(BaselineError):
            load_baseline(path)
