"""SARIF 2.1.0 output: structural checks plus JSON-Schema validation.

The full OASIS schema is not vendored; the test validates against an
embedded subset that pins every structural requirement the spec imposes
on the parts we emit (required run/tool/result members, version enum,
baselineState enum, region line numbers >= 1).
"""

import json

import pytest

from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION, sarif_dumps, sarif_report
from repro.analysis.violations import CheckReport

#: Condensed SARIF 2.1.0 schema: the spec's constraints for the subset
#: of the format repro-check emits.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0},
                                "level": {"enum": ["none", "note",
                                                   "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}},
                                },
                                "baselineState": {
                                    "enum": ["new", "unchanged",
                                             "updated", "absent"]},
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {"type":
                                                                    "string"},
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def report_with(*findings):
    report = CheckReport("lint")
    for rule, location, message in findings:
        report.check(False, "lint", rule, location, message)
    return report


class TestStructure:
    def test_document_shape(self):
        doc = sarif_report(report_with(
            ("REPRO001", "src/a.py:10", "mutable default")))
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        result = run["results"][0]
        assert result["ruleId"] == "REPRO001"
        assert result["message"]["text"] == "mutable default"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/a.py"
        assert location["region"]["startLine"] == 10

    def test_rules_metadata_from_registry(self):
        doc = sarif_report(CheckReport("lint"))
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert ids == sorted(ids)
        assert "REPRO001" in ids and "REPRO012" in ids
        by_id = {rule["id"]: rule for rule in rules}
        assert by_id["REPRO009"]["name"] == "resource-leak"
        assert by_id["REPRO009"]["shortDescription"]["text"]

    def test_rule_index_matches_rules_array(self):
        doc = sarif_report(report_with(
            ("REPRO009", "src/a.py:1", "leak")))
        run = doc["runs"][0]
        result = run["results"][0]
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "REPRO009"

    def test_baseline_state(self):
        report = report_with(
            ("REPRO001", "src/a.py:10", "known finding"),
            ("REPRO001", "src/b.py:20", "new finding"),
        )
        new_ids = {id(report.violations[1])}
        doc = sarif_report(report, new_ids)
        states = [r["baselineState"] for r in doc["runs"][0]["results"]]
        assert states == ["unchanged", "new"]
        # Without a baseline, no baselineState member at all.
        plain = sarif_report(report)
        assert all("baselineState" not in r
                   for r in plain["runs"][0]["results"])

    def test_location_without_line(self):
        doc = sarif_report(report_with(("REPRO012", "src/a.py", "graph")))
        location = doc["runs"][0]["results"][0]["locations"][0]
        assert location["physicalLocation"]["region"]["startLine"] == 1

    def test_dumps_is_valid_json(self):
        payload = sarif_dumps(report_with(("REPRO001", "a.py:1", "x")))
        assert json.loads(payload)["version"] == "2.1.0"


class TestSchemaValidation:
    def test_validates_against_sarif_subset_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        report = report_with(
            ("REPRO001", "src/a.py:10", "mutable default"),
            ("REPRO012", "src/b.py", "layering"),
        )
        new_ids = {id(report.violations[0])}
        for doc in (sarif_report(report), sarif_report(report, new_ids),
                    sarif_report(CheckReport("lint"))):
            jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)
