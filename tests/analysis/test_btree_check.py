"""B-tree structural invariants, and the stats()/repr surface."""

from repro.analysis.btree_check import btree_check
from repro.storage.btree import BTree, BTreeStats


def make_tree(n=300, capacity=8) -> BTree:
    tree = BTree(page_capacity=capacity)
    for i in range(n):
        tree.insert(i, b"v%d" % i)
    return tree


def rules_of(report):
    return {violation.rule for violation in report.violations}


class TestCleanTrees:
    def test_multi_level_tree_passes(self):
        report = btree_check(make_tree())
        assert report.ok, "\n".join(report.format_lines())
        assert report.n_checks > 0

    def test_single_leaf_tree_passes(self):
        assert btree_check(make_tree(n=3)).ok

    def test_write_through_tree_passes(self):
        tree = BTree(page_capacity=8, write_through=True)
        for i in range(100):
            tree.insert(i)
        assert btree_check(tree).ok

    def test_after_deletes_passes(self):
        tree = make_tree()
        for i in range(0, 300, 3):
            tree.delete(i)
        assert btree_check(tree).ok


class TestCorruption:
    def test_swapped_leaf_keys_flagged(self):
        tree = make_tree()
        leaf = tree._first_leaf
        leaf.keys[0], leaf.keys[1] = leaf.keys[1], leaf.keys[0]
        assert "btree.key-order" in rules_of(btree_check(tree))

    def test_wrong_entry_count_flagged(self):
        tree = make_tree()
        tree._n_entries += 5
        assert "btree.entry-count" in rules_of(btree_check(tree))

    def test_stale_encoded_page_flagged(self):
        tree = make_tree()
        tree.flush()
        leaf = tree._first_leaf
        leaf.values[0] = b"overwritten-behind-the-cache"
        leaf.dirty = False  # lie: claim the page image is current
        assert "btree.stale-page" in rules_of(btree_check(tree))

    def test_broken_leaf_chain_flagged(self):
        tree = make_tree()
        tree._first_leaf.next = None
        assert "btree.leaf-chain" in rules_of(btree_check(tree))


class TestStats:
    def test_stats_match_structure(self):
        tree = make_tree()
        stats = tree.stats()
        assert isinstance(stats, BTreeStats)
        assert stats.entries == len(tree) == 300
        assert (stats.leaf_pages, stats.internal_pages) == tree.page_counts
        assert stats.depth >= 2
        assert 0.0 < stats.fill_ratio <= 1.0

    def test_stats_do_not_flush(self):
        tree = make_tree()
        stats = tree.stats()
        assert stats.leaf_pages > 0
        assert tree._first_leaf.dirty  # probing stats left pages untouched

    def test_repr(self):
        text = repr(make_tree(n=10, capacity=8))
        assert text.startswith("BTree(entries=10")
