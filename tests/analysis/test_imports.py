"""Import-graph construction, layering enforcement and cycle detection."""

import textwrap

from repro.analysis.imports import (
    build_import_graph,
    import_cycles,
    layer_of,
    layering_violations,
    module_name_for,
)
from repro.analysis.lint import iter_source_files


def make_tree(tmp_path, files):
    """Write ``{"repro/pkg/mod.py": source}`` under tmp_path."""
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return sorted(paths)


class TestGraphConstruction:
    def test_module_names_anchor_at_repro(self, tmp_path):
        path = tmp_path / "repro" / "storage" / "btree.py"
        assert module_name_for(path) == "repro.storage.btree"
        init = tmp_path / "repro" / "storage" / "__init__.py"
        assert module_name_for(init) == "repro.storage"
        assert module_name_for(tmp_path / "benchmarks" / "x.py") is None

    def test_toplevel_vs_lazy_edges(self, tmp_path):
        paths = make_tree(tmp_path, {
            "repro/storage/a.py": """
                import repro.telemetry

                def late():
                    from repro.dwarf import cube
                    return cube
            """,
            "repro/telemetry/__init__.py": "",
            "repro/dwarf/cube.py": "",
        })
        graph = build_import_graph(paths)
        edges = {(e.imported, e.toplevel) for e in
                 graph.modules["repro.storage.a"].edges}
        assert ("repro.telemetry", True) in edges
        assert ("repro.dwarf.cube", False) in edges

    def test_from_package_import_submodule_resolves(self, tmp_path):
        paths = make_tree(tmp_path, {
            "repro/sqldb/sql/__init__.py":
                "from repro.sqldb.sql.parser import parse\n",
            "repro/sqldb/sql/parser.py":
                "from repro.sqldb.sql import ast\n",
            "repro/sqldb/sql/ast.py": "",
        })
        graph = build_import_graph(paths)
        parser_edges = {e.imported for e in
                        graph.modules["repro.sqldb.sql.parser"].edges}
        # Resolved onto the submodule, not the package __init__.
        assert parser_edges == {"repro.sqldb.sql.ast"}
        assert import_cycles(graph) == []


class TestLayering:
    def test_upward_import_flagged(self, tmp_path):
        paths = make_tree(tmp_path, {
            "repro/storage/bad.py": "import repro.dwarf.cube\n",
            "repro/dwarf/cube.py": "",
        })
        violations = layering_violations(build_import_graph(paths))
        assert len(violations) == 1
        assert "must point down the layer order" in violations[0].message
        assert violations[0].edge.importer == "repro.storage.bad"

    def test_sibling_import_flagged(self, tmp_path):
        paths = make_tree(tmp_path, {
            "repro/sqldb/x.py": "from repro.nosqldb.cache import thing\n",
            "repro/nosqldb/cache.py": "thing = 1\n",
        })
        violations = layering_violations(build_import_graph(paths))
        assert len(violations) == 1
        assert "sibling" in violations[0].message

    def test_leaf_and_lazy_imports_exempt(self, tmp_path):
        paths = make_tree(tmp_path, {
            "repro/storage/ok.py": """
                from repro.telemetry import metrics

                def runtime_only():
                    import repro.nosqldb.cache
                    return repro.nosqldb.cache
            """,
            "repro/telemetry/metrics.py": "",
            "repro/nosqldb/cache.py": "",
        })
        assert layering_violations(build_import_graph(paths)) == []

    def test_downward_import_ok(self, tmp_path):
        paths = make_tree(tmp_path, {
            "repro/dwarf/builder.py": "from repro.storage import btree\n",
            "repro/storage/btree.py": "",
        })
        assert layering_violations(build_import_graph(paths)) == []

    def test_declared_ranks_match_reality(self):
        assert layer_of("repro.core.pipeline") < layer_of("repro.storage.x")
        assert layer_of("repro.query.plan") < layer_of("repro.sqldb.engine")
        assert layer_of("repro.mapping.x") < layer_of("repro.cli")


class TestCycles:
    def test_two_module_cycle(self, tmp_path):
        paths = make_tree(tmp_path, {
            "repro/dwarf/a.py": "import repro.dwarf.b\n",
            "repro/dwarf/b.py": "import repro.dwarf.a\n",
        })
        cycles = import_cycles(build_import_graph(paths))
        assert cycles == [["repro.dwarf.a", "repro.dwarf.b"]]

    def test_lazy_import_breaks_cycle(self, tmp_path):
        paths = make_tree(tmp_path, {
            "repro/dwarf/a.py": "import repro.dwarf.b\n",
            "repro/dwarf/b.py": """
                def f():
                    import repro.dwarf.a
                    return repro.dwarf.a
            """,
        })
        assert import_cycles(build_import_graph(paths)) == []

    def test_self_import_cycle(self, tmp_path):
        paths = make_tree(tmp_path, {
            "repro/dwarf/a.py": "import repro.dwarf.a\n",
        })
        cycles = import_cycles(build_import_graph(paths))
        assert cycles == [["repro.dwarf.a"]]


class TestRealRepo:
    def test_package_layering_is_clean(self):
        graph = build_import_graph(iter_source_files())
        assert layering_violations(graph) == []

    def test_package_has_no_import_cycles(self):
        graph = build_import_graph(iter_source_files())
        assert import_cycles(graph) == []
