"""Relational heap invariants: clustered tree, row codec, indexes."""

from repro.analysis.heap_check import heap_check
from repro.sqldb.table import SQLColumn, Table
from repro.sqldb.types import parse_type


def make_table(n=60) -> Table:
    table = Table(
        "cell",
        [
            SQLColumn("id", parse_type("int")),
            SQLColumn("name", parse_type("varchar(64)")),
            SQLColumn("measure", parse_type("int")),
            SQLColumn("leaf", parse_type("boolean"), not_null=True),
        ],
        ("id",),
    )
    table.create_index("cell_name", "name")
    for i in range(n):
        table.insert({"id": i, "name": f"m{i % 9}", "measure": i, "leaf": i % 2 == 0})
    return table


def rules_of(report):
    return {violation.rule for violation in report.violations}


class TestCleanTables:
    def test_populated_table_passes(self):
        report = heap_check(make_table())
        assert report.ok, "\n".join(report.format_lines())
        assert report.n_checks > 0

    def test_empty_table_passes(self):
        assert heap_check(make_table(n=0)).ok

    def test_after_updates_and_deletes_passes(self):
        table = make_table()
        table.update_where(lambda row: row["id"] < 10, {"measure": -1})
        table.delete_where(lambda row: row["id"] % 5 == 0)
        report = heap_check(table)
        assert report.ok, "\n".join(report.format_lines())


class TestCorruption:
    def test_corrupt_clustered_row_flagged(self):
        # Satellite check: hand-corrupt a heap page's row payload; the
        # checker must flag it rather than trust the stored bytes.
        table = make_table()
        table._clustered.insert(7, b"\xff\xffnot a row")
        assert "heap.corrupt-row" in rules_of(heap_check(table))

    def test_mislabeled_pk_flagged(self):
        table = make_table()
        row = table.get(3)
        row["id"] = 4  # stored under key 3 but claims to be row 4
        table._clustered.insert(3, table.encode_row(row))
        report = heap_check(table)
        assert "heap.pk-agreement" in rules_of(report)

    def test_stale_index_entry_flagged(self):
        table = make_table()
        table._secondary["name"].insert(("zz", 999))
        assert "heap.index-agreement" in rules_of(heap_check(table))

    def test_missing_index_entry_flagged(self):
        table = make_table()
        table._secondary["name"].delete(("m1", 1))
        assert "heap.index-agreement" in rules_of(heap_check(table))
