"""CheckRunner dispatch, the REPRO_CHECK gate, and the builder/session hooks."""

import pytest

from repro.analysis.flags import checks_enabled
from repro.analysis.runner import CheckRunner, runtime_check
from repro.analysis.violations import InvariantViolationError
from repro.dwarf.builder import DwarfBuilder
from repro.sqldb.table import SQLColumn, Table
from repro.sqldb.types import parse_type
from repro.storage.btree import BTree


def make_table() -> Table:
    table = Table("t", [SQLColumn("id", parse_type("int"))], ("id",))
    table.insert({"id": 1})
    return table


class TestDispatch:
    def test_cube_dispatches_to_dwarf_check(self, sample_cube):
        report = CheckRunner().check(sample_cube)
        assert report.ok and report.n_checks > 0

    def test_btree_dispatches(self):
        tree = BTree()
        tree.insert(1)
        assert CheckRunner().check(tree).ok

    def test_sqldb_table_dispatches(self):
        assert CheckRunner().check(make_table()).ok

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            CheckRunner().check(42)

    def test_check_all_merges(self, sample_cube):
        tree = BTree()
        tree.insert(1)
        report = CheckRunner().check_all([sample_cube, tree], name="combined")
        assert report.ok
        assert report.name == "combined"


class TestGate:
    def test_disabled_values(self, monkeypatch):
        for value in ("", "0", "false", "no", "off"):
            monkeypatch.setenv("REPRO_CHECK", value)
            assert not checks_enabled()
        monkeypatch.delenv("REPRO_CHECK")
        assert not checks_enabled()

    def test_enabled_values(self, monkeypatch):
        for value in ("1", "true", "yes"):
            monkeypatch.setenv("REPRO_CHECK", value)
            assert checks_enabled()

    def test_runtime_check_is_a_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        tree = BTree()
        tree.insert(1)
        tree._n_entries += 5  # corrupt — but nobody is looking
        assert runtime_check(tree) is None

    def test_runtime_check_raises_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        tree = BTree()
        tree.insert(1)
        tree._n_entries += 5
        with pytest.raises(InvariantViolationError) as excinfo:
            runtime_check(tree, label="unit")
        assert excinfo.value.violations

    def test_runtime_check_passes_clean_targets(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        report = runtime_check(make_table())
        assert report is not None and report.ok


class TestHooks:
    def test_builder_hook_accepts_clean_build(self, sample_facts, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        cube = DwarfBuilder(sample_facts.schema).build(sample_facts)
        assert cube.n_source_tuples == 4

    def test_session_hook_accepts_clean_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        from repro.sqldb.engine import SQLEngine
        session = SQLEngine().connect()
        session.execute("CREATE DATABASE d")
        session.execute("USE d")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        insert = session.compile_insert("INSERT INTO t (id, v) VALUES (?, ?)")
        assert insert.execute_batch([(i, i * 2) for i in range(20)]) == 20

    def test_session_hook_raises_on_corruption(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        from repro.sqldb.engine import SQLEngine
        session = SQLEngine().connect()
        session.execute("CREATE DATABASE d")
        session.execute("USE d")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        insert = session.compile_insert("INSERT INTO t (id, v) VALUES (?, ?)")
        insert.table._clustered.insert(99, b"\xff\xffgarbage")
        with pytest.raises(InvariantViolationError):
            insert.execute_batch([(1, 2)])
