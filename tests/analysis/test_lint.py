"""The repo-specific AST lint pass: clean repo + one case per rule."""

import textwrap

from repro.analysis.lint import lint_file, run_lint
from repro.analysis.violations import CheckReport


def lint_source(tmp_path, relative, source) -> CheckReport:
    """Lint one synthetic file placed at ``tmp_path/relative``."""
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    report = CheckReport("lint")
    lint_file(path, report)
    return report


def rules_of(report):
    return {violation.rule for violation in report.violations}


class TestRepoIsClean:
    def test_package_passes_every_rule(self):
        report = run_lint()
        assert report.ok, "\n".join(report.format_lines())
        assert report.n_checks > 0


class TestRules:
    def test_repro000_unparseable(self, tmp_path):
        report = lint_source(tmp_path, "mod.py", "def broken(:\n")
        assert rules_of(report) == {"REPRO000"}

    def test_repro001_mutable_default(self, tmp_path):
        report = lint_source(
            tmp_path, "mod.py",
            """
            def collect(items=[]):
                return items

            def tag(labels={}, marks=set(), safe=()):
                return labels, marks, safe
            """,
        )
        assert rules_of(report) == {"REPRO001"}
        assert len(report.violations) == 3  # the tuple default is fine

    def test_repro002_bare_except(self, tmp_path):
        report = lint_source(
            tmp_path, "mod.py",
            """
            def swallow():
                try:
                    return 1
                except:
                    return None

            def fine():
                try:
                    return 1
                except ValueError:
                    return None
            """,
        )
        assert rules_of(report) == {"REPRO002"}
        assert len(report.violations) == 1

    def test_repro003_dict_order_hash_in_cube_code(self, tmp_path):
        bad = """
        def signature(cells):
            return hash(tuple(cells.keys()))
        """
        assert rules_of(lint_source(tmp_path, "dwarf/mod.py", bad)) == {"REPRO003"}
        # Wrapping the view in sorted() canonicalises it.
        good = """
        def signature(cells):
            return hash(tuple(sorted(cells.keys())))
        """
        assert lint_source(tmp_path, "dwarf/mod.py", good).ok
        # Outside cube-hashing code the rule does not apply.
        assert lint_source(tmp_path, "smartcity/mod.py", bad).ok

    def test_repro004_undocumented_raise(self, tmp_path):
        bad = """
        def parse_type(text):
            '''Parse a type name.'''
            raise ProgrammingError(text)
        """
        report = lint_source(tmp_path, "sqldb/mod.py", bad)
        assert rules_of(report) == {"REPRO004"}
        good = """
        def parse_type(text):
            '''Parse a type name.

            Raises ProgrammingError for unknown names.
            '''
            raise ProgrammingError(text)
        """
        assert lint_source(tmp_path, "sqldb/mod.py", good).ok
        # The rule only covers the engine packages.
        assert lint_source(tmp_path, "bench/mod.py", bad).ok

    def test_repro005_layering(self, tmp_path):
        bad = """
        from repro.dwarf.cube import DwarfCube

        def peek(cube):
            return cube.root
        """
        report = lint_source(tmp_path, "storage/mod.py", bad)
        assert rules_of(report) == {"REPRO005"}
        # The storage layer may import itself and the core.
        good = """
        from repro.storage.varint import encode_varint
        """
        assert lint_source(tmp_path, "storage/mod.py", good).ok
        # Query front-ends must not import the mapping layer.
        frontend = """
        from repro.mapping.registry import make_mapper
        """
        assert rules_of(
            lint_source(tmp_path, "sqldb/sql/mod.py", frontend)
        ) == {"REPRO005"}

    def test_repro006_kernel_independence(self, tmp_path):
        # The shared kernel must not import either engine...
        for module in ("repro.sqldb.table", "repro.nosqldb.columnfamily",
                       "repro.mapping.base"):
            bad = f"""
            from {module} import anything
            """
            assert rules_of(
                lint_source(tmp_path, "repro/query/mod.py", bad)
            ) == {"REPRO006"}
        # ...but may import itself, and engines may import the kernel.
        good = """
        from repro.query.plan import PlanNode
        from repro.query import expr
        """
        assert lint_source(tmp_path, "repro/query/mod.py", good).ok
        engine_side = """
        from repro.query import Plan, PlanCache
        """
        assert lint_source(tmp_path, "sqldb/mod.py", engine_side).ok
        # telemetry is a stdlib-only leaf, importable even from the kernel.
        telemetry = """
        from repro.telemetry import get_registry, get_tracer
        from repro.telemetry.metrics import Counter
        """
        assert lint_source(tmp_path, "repro/query/mod.py", telemetry).ok

    def test_repro007_raw_clock(self, tmp_path):
        bad = """
        import time
        from time import perf_counter

        def measure(fn):
            started = time.perf_counter()
            fn()
            other = perf_counter()
            return other - started
        """
        report = lint_source(tmp_path, "dwarf/mod.py", bad)
        assert rules_of(report) == {"REPRO007"}
        assert len(report.violations) == 2
        # The telemetry package and the shared benchmark helpers own the clock.
        assert lint_source(tmp_path, "repro/telemetry/mod.py", bad).ok
        assert lint_source(tmp_path, "benchmarks/_timing.py", bad).ok
        # The sanctioned alias does not trip the rule.
        good = """
        from repro.telemetry import wall_clock

        def measure(fn):
            started = wall_clock()
            fn()
            return wall_clock() - started
        """
        assert lint_source(tmp_path, "dwarf/mod.py", good).ok

    def test_default_roots_cover_benchmarks(self):
        from repro.analysis.lint import default_roots

        names = {root.name for root in default_roots()}
        assert "repro" in names and "benchmarks" in names
