"""The repo-specific AST lint pass: clean repo + one case per rule."""

import textwrap

from repro.analysis.lint import lint_file, run_lint
from repro.analysis.violations import CheckReport


def lint_source(tmp_path, relative, source) -> CheckReport:
    """Lint one synthetic file placed at ``tmp_path/relative``."""
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    report = CheckReport("lint")
    lint_file(path, report)
    return report


def rules_of(report):
    return {violation.rule for violation in report.violations}


class TestRepoIsClean:
    def test_package_passes_every_rule(self):
        report = run_lint()
        assert report.ok, "\n".join(report.format_lines())
        assert report.n_checks > 0


class TestRules:
    def test_repro000_unparseable(self, tmp_path):
        report = lint_source(tmp_path, "mod.py", "def broken(:\n")
        assert rules_of(report) == {"REPRO000"}

    def test_repro001_mutable_default(self, tmp_path):
        report = lint_source(
            tmp_path, "mod.py",
            """
            def collect(items=[]):
                return items

            def tag(labels={}, marks=set(), safe=()):
                return labels, marks, safe
            """,
        )
        assert rules_of(report) == {"REPRO001"}
        assert len(report.violations) == 3  # the tuple default is fine

    def test_repro002_bare_except(self, tmp_path):
        report = lint_source(
            tmp_path, "mod.py",
            """
            def swallow():
                try:
                    return 1
                except:
                    return None

            def fine():
                try:
                    return 1
                except ValueError:
                    return None
            """,
        )
        assert rules_of(report) == {"REPRO002"}
        assert len(report.violations) == 1

    def test_repro003_dict_order_hash_in_cube_code(self, tmp_path):
        bad = """
        def signature(cells):
            return hash(tuple(cells.keys()))
        """
        assert rules_of(lint_source(tmp_path, "dwarf/mod.py", bad)) == {"REPRO003"}
        # Wrapping the view in sorted() canonicalises it.
        good = """
        def signature(cells):
            return hash(tuple(sorted(cells.keys())))
        """
        assert lint_source(tmp_path, "dwarf/mod.py", good).ok
        # Outside cube-hashing code the rule does not apply.
        assert lint_source(tmp_path, "smartcity/mod.py", bad).ok

    def test_repro004_undocumented_raise(self, tmp_path):
        bad = """
        def parse_type(text):
            '''Parse a type name.'''
            raise ProgrammingError(text)
        """
        report = lint_source(tmp_path, "sqldb/mod.py", bad)
        assert rules_of(report) == {"REPRO004"}
        good = """
        def parse_type(text):
            '''Parse a type name.

            Raises ProgrammingError for unknown names.
            '''
            raise ProgrammingError(text)
        """
        assert lint_source(tmp_path, "sqldb/mod.py", good).ok
        # The rule only covers the engine packages.
        assert lint_source(tmp_path, "bench/mod.py", bad).ok

    def test_repro005_layering(self, tmp_path):
        bad = """
        from repro.dwarf.cube import DwarfCube

        def peek(cube):
            return cube.root
        """
        report = lint_source(tmp_path, "storage/mod.py", bad)
        assert rules_of(report) == {"REPRO005"}
        # The storage layer may import itself and the core.
        good = """
        from repro.storage.varint import encode_varint
        """
        assert lint_source(tmp_path, "storage/mod.py", good).ok
        # Query front-ends must not import the mapping layer.
        frontend = """
        from repro.mapping.registry import make_mapper
        """
        assert rules_of(
            lint_source(tmp_path, "sqldb/sql/mod.py", frontend)
        ) == {"REPRO005"}

    def test_repro006_kernel_independence(self, tmp_path):
        # The shared kernel must not import either engine...
        for module in ("repro.sqldb.table", "repro.nosqldb.columnfamily",
                       "repro.mapping.base"):
            bad = f"""
            from {module} import anything
            """
            assert rules_of(
                lint_source(tmp_path, "repro/query/mod.py", bad)
            ) == {"REPRO006"}
        # ...but may import itself, and engines may import the kernel.
        good = """
        from repro.query.plan import PlanNode
        from repro.query import expr
        """
        assert lint_source(tmp_path, "repro/query/mod.py", good).ok
        engine_side = """
        from repro.query import Plan, PlanCache
        """
        assert lint_source(tmp_path, "sqldb/mod.py", engine_side).ok
        # telemetry is a stdlib-only leaf, importable even from the kernel.
        telemetry = """
        from repro.telemetry import get_registry, get_tracer
        from repro.telemetry.metrics import Counter
        """
        assert lint_source(tmp_path, "repro/query/mod.py", telemetry).ok

    def test_repro007_raw_clock(self, tmp_path):
        bad = """
        import time
        from time import perf_counter

        def measure(fn):
            started = time.perf_counter()
            fn()
            other = perf_counter()
            return other - started
        """
        report = lint_source(tmp_path, "dwarf/mod.py", bad)
        assert rules_of(report) == {"REPRO007"}
        assert len(report.violations) == 2
        # The telemetry package and the shared benchmark helpers own the clock.
        assert lint_source(tmp_path, "repro/telemetry/mod.py", bad).ok
        assert lint_source(tmp_path, "benchmarks/_timing.py", bad).ok
        # The sanctioned alias does not trip the rule.
        good = """
        from repro.telemetry import wall_clock

        def measure(fn):
            started = wall_clock()
            fn()
            return wall_clock() - started
        """
        assert lint_source(tmp_path, "dwarf/mod.py", good).ok

    def test_default_roots_cover_benchmarks(self):
        from repro.analysis.lint import default_roots

        names = {root.name for root in default_roots()}
        assert "repro" in names and "benchmarks" in names


class TestFlowRules:
    def test_repro008_unguarded_mutation_fires(self, tmp_path):
        report = lint_source(
            tmp_path, "nosqldb/mod.py",
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._n = 0

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
                        self._n += 1

                def bump(self):
                    self._n += 1
            """,
        )
        assert rules_of(report) == {"REPRO008"}
        assert len(report.violations) == 1
        assert "bump" in report.violations[0].message

    def test_repro008_guarded_and_exempt_paths_quiet(self, tmp_path):
        report = lint_source(
            tmp_path, "nosqldb/mod.py",
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._n = 0

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
                        self._n += 1

                def bump(self):
                    with self._lock:
                        self._n += 1

                def reset(self):
                    self._n = 0

                def drain(self):
                    self._lock.acquire()
                    self._n = 0
                    self._lock.release()
            """,
        )
        assert report.ok, "\n".join(report.format_lines())

    def test_repro008_ignores_lockless_classes(self, tmp_path):
        report = lint_source(
            tmp_path, "core/mod.py",
            """
            class Plain:
                def __init__(self):
                    self.n = 0

                def bump(self):
                    self.n += 1
            """,
        )
        assert report.ok

    def test_repro009_leak_on_some_path_fires(self, tmp_path):
        report = lint_source(
            tmp_path, "etl/mod.py",
            """
            def leak(path):
                fh = open(path)
                data = fh.read()
                return data

            def maybe_leak(path, flag):
                fh = open(path)
                if flag:
                    fh.close()
                return None
            """,
        )
        assert rules_of(report) == {"REPRO009"}
        assert len(report.violations) == 2

    def test_repro009_discarded_handle_fires(self, tmp_path):
        report = lint_source(
            tmp_path, "etl/mod.py",
            """
            def touch(path):
                open(path, "w")
            """,
        )
        assert rules_of(report) == {"REPRO009"}

    def test_repro009_managed_handles_quiet(self, tmp_path):
        report = lint_source(
            tmp_path, "etl/mod.py",
            """
            def with_managed(path):
                with open(path) as fh:
                    return fh.read()

            def closed_in_finally(path):
                fh = open(path)
                try:
                    return fh.read()
                finally:
                    fh.close()

            def ownership_transferred(path):
                fh = open(path)
                return fh

            def handed_off(path, sink):
                fh = open(path)
                sink.adopt(fh)
                return None
            """,
        )
        assert report.ok, "\n".join(report.format_lines())

    def test_repro010_unlocked_module_state_fires(self, tmp_path):
        report = lint_source(
            tmp_path, "nosqldb/mod.py",
            """
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value
            """,
        )
        assert rules_of(report) == {"REPRO010"}

    def test_repro010_locked_or_reset_writes_quiet(self, tmp_path):
        report = lint_source(
            tmp_path, "nosqldb/mod.py",
            """
            import threading

            _CACHE = {}
            _LOCK = threading.Lock()

            def put(key, value):
                with _LOCK:
                    _CACHE[key] = value

            def _reset_cache():
                _CACHE.clear()
            """,
        )
        assert report.ok, "\n".join(report.format_lines())
        # Outside the concurrent packages the rule does not apply.
        other = lint_source(
            tmp_path, "smartcity/mod.py",
            """
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value
            """,
        )
        assert other.ok

    def test_repro011_propagated_raise_fires(self, tmp_path):
        report = lint_source(
            tmp_path, "sqldb/mod.py",
            """
            def _decode(raw):
                if not raw:
                    raise CodecError("empty")
                return raw

            def fetch(raw):
                '''Fetch a row.'''
                return _decode(raw)
            """,
        )
        assert rules_of(report) == {"REPRO011"}
        assert "CodecError" in report.violations[0].message

    def test_repro011_documented_caught_or_dead_quiet(self, tmp_path):
        report = lint_source(
            tmp_path, "sqldb/mod.py",
            """
            def _decode(raw):
                if not raw:
                    raise CodecError("empty")
                return raw

            def _never_raises(raw):
                return raw
                raise CodecError("dead code")

            def fetch(raw):
                '''Fetch a row.

                Raises CodecError on empty input.
                '''
                return _decode(raw)

            def fetch_or_none(raw):
                '''Fetch a row or return None.'''
                try:
                    return _decode(raw)
                except CodecError:
                    return None

            def fetch_raw(raw):
                '''No helper contract involved.'''
                return _never_raises(raw)
            """,
        )
        assert report.ok, "\n".join(report.format_lines())


class TestProjectRules:
    def test_repro012_upward_import_fires(self, tmp_path):
        path = tmp_path / "repro" / "storage" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text("import repro.dwarf.cube\n", encoding="utf-8")
        cube = tmp_path / "repro" / "dwarf" / "cube.py"
        cube.parent.mkdir(parents=True)
        cube.write_text("", encoding="utf-8")
        report = run_lint(paths=[tmp_path], rules=["REPRO012"])
        assert rules_of(report) == {"REPRO012"}
        assert "layer" in report.violations[0].message

    def test_repro012_cycle_fires(self, tmp_path):
        pkg = tmp_path / "repro" / "dwarf"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text("import repro.dwarf.b\n", encoding="utf-8")
        (pkg / "b.py").write_text("import repro.dwarf.a\n", encoding="utf-8")
        report = run_lint(paths=[tmp_path], rules=["REPRO012"])
        assert rules_of(report) == {"REPRO012"}
        assert any("cycle" in v.message for v in report.violations)

    def test_repro012_lazy_import_quiet(self, tmp_path):
        path = tmp_path / "repro" / "storage" / "ok.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "def late():\n    import repro.dwarf.cube\n", encoding="utf-8")
        cube = tmp_path / "repro" / "dwarf" / "cube.py"
        cube.parent.mkdir(parents=True)
        cube.write_text("", encoding="utf-8")
        report = run_lint(paths=[tmp_path], rules=["REPRO012"])
        assert report.ok, "\n".join(report.format_lines())


class TestSuppressionsAndSelection:
    def test_noqa_suppresses_exact_rule(self, tmp_path):
        report = lint_source(
            tmp_path, "mod.py",
            """
            def collect(items=[]):  # repro: noqa[REPRO001]
                return items
            """,
        )
        assert report.ok, "\n".join(report.format_lines())

    def test_noqa_other_rule_does_not_suppress(self, tmp_path):
        report = lint_source(
            tmp_path, "mod.py",
            """
            def collect(items=[]):  # repro: noqa[REPRO002]
                return items
            """,
        )
        # REPRO001 still fires, and the REPRO002 pragma is unused.
        assert rules_of(report) == {"REPRO001", "REPRO013"}

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        report = lint_source(
            tmp_path, "mod.py",
            """
            def collect(items=[]):  # repro: noqa
                return items
            """,
        )
        assert report.ok

    def test_pragma_in_string_literal_is_inert(self, tmp_path):
        report = lint_source(
            tmp_path, "mod.py",
            """
            def collect(items=[]):
                return "# repro: noqa[REPRO001]"
            """,
        )
        assert rules_of(report) == {"REPRO001"}

    def test_unused_suppression_reported(self, tmp_path):
        report = lint_source(
            tmp_path, "mod.py",
            """
            def fine():  # repro: noqa[REPRO001]
                return 1
            """,
        )
        assert rules_of(report) == {"REPRO013"}

    def test_rules_selection_narrows_run(self, tmp_path):
        source = """
        def collect(items=[]):
            try:
                return items
            except:
                return None
        """
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        both = run_lint(paths=[path])
        assert rules_of(both) == {"REPRO001", "REPRO002"}
        only = run_lint(paths=[path], rules=["REPRO002"])
        assert rules_of(only) == {"REPRO002"}
        without = run_lint(paths=[path], exclude_rules=["REPRO002"])
        assert rules_of(without) == {"REPRO001"}

    def test_unknown_rule_id_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="REPRO999"):
            run_lint(paths=[tmp_path], rules=["REPRO999"])

    def test_selection_keeps_subset_pragmas_quiet(self, tmp_path):
        # A pragma for a rule that did not run must not be "unused".
        source = """
        def fine():  # repro: noqa[REPRO002]
            return 1
        """
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        report = run_lint(paths=[path], rules=["REPRO001", "REPRO013"])
        assert report.ok, "\n".join(report.format_lines())


class TestUnparseableCounted:
    def test_parse_failure_counts_as_a_check(self, tmp_path):
        """REPRO000 runs must be distinguishable from empty runs."""
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        report = run_lint(paths=[path])
        assert rules_of(report) == {"REPRO000"}
        assert report.n_checks >= 1
        assert "0 checks" not in report.summary()
        assert "1 violation" in report.summary()


class TestRepro014TelemetryNameCatalog:
    BAD = """
    from repro.telemetry import get_registry, get_tracer

    _C = get_registry().counter("made_up_total", "not in the catalog")

    def traced():
        with get_tracer().span("made.up"):
            pass
    """

    def test_uncataloged_names_flagged(self, tmp_path):
        report = lint_source(tmp_path, "etl/mod.py", self.BAD)
        assert rules_of(report) == {"REPRO014"}
        assert len(report.violations) == 2
        messages = "\n".join(report.format_lines())
        assert "made_up_total" in messages and "made.up" in messages

    def test_cataloged_names_pass(self, tmp_path):
        report = lint_source(
            tmp_path, "etl/mod.py",
            """
            from repro.telemetry import get_registry, get_tracer

            _C = get_registry().counter("etl_records_total", "cataloged")
            _H = get_registry().histogram("dwarf_build_seconds", "cataloged")

            def traced():
                with get_tracer().span("etl.parse"):
                    pass
            """,
        )
        assert report.ok, "\n".join(report.format_lines())

    def test_telemetry_package_itself_exempt(self, tmp_path):
        report = lint_source(tmp_path, "repro/telemetry/mod.py", self.BAD)
        assert report.ok, "\n".join(report.format_lines())

    def test_dynamic_names_out_of_static_reach(self, tmp_path):
        report = lint_source(
            tmp_path, "etl/mod.py",
            """
            from repro.telemetry import get_registry

            def make(name):
                return get_registry().counter(name, "dynamic")
            """,
        )
        assert report.ok, "\n".join(report.format_lines())
