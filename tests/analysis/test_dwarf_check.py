"""DWARF structural invariants: clean cubes pass, corrupted cubes are caught."""

from repro.analysis.dwarf_check import (
    check_build_equivalence,
    dwarf_check,
    structural_signature,
)
from repro.dwarf.builder import DwarfBuilder
from repro.dwarf.parallel import ParallelDwarfBuilder


def rules_of(report):
    return {violation.rule for violation in report.violations}


class TestCleanCubes:
    def test_sample_cube_passes(self, sample_cube):
        report = dwarf_check(sample_cube)
        assert report.ok, "\n".join(report.format_lines())
        assert report.n_checks > 0

    def test_uncoalesced_cube_passes(self, sample_facts):
        cube = DwarfBuilder(sample_facts.schema, coalesce=False).build(sample_facts)
        report = dwarf_check(cube, coalesce=False)
        assert report.ok, "\n".join(report.format_lines())

    def test_bike_cube_passes(self, bike_bundle):
        _, _, cube = bike_bundle
        assert dwarf_check(cube).ok


class TestCorruption:
    def test_broken_cell_order_flagged(self, sample_cube):
        root = sample_cube.root
        items = list(root._cells.items())
        root._cells.clear()
        for key, cell in reversed(items):
            root._cells[key] = cell
        assert "dwarf.cell-order" in rules_of(dwarf_check(sample_cube))

    def test_wrong_all_aggregate_flagged(self, sample_cube):
        # Dublin's leaf node: cells 3 and 5, ALL must aggregate to 8.
        leaf = sample_cube.root.cell("Ireland").node.cell("Dublin").node
        leaf.all_cell.value = 999
        assert "dwarf.all-aggregate" in rules_of(dwarf_check(sample_cube))

    def test_unclosed_node_flagged(self, sample_cube):
        sample_cube.root.cell("France").node.all_cell = None
        assert "dwarf.unclosed" in rules_of(dwarf_check(sample_cube))


class TestBuildEquivalence:
    def test_serial_rebuild_is_identical(self, sample_facts, sample_cube):
        rebuilt = DwarfBuilder(sample_facts.schema).build(sample_facts)
        assert structural_signature(rebuilt) == structural_signature(sample_cube)
        report = check_build_equivalence(sample_cube, rebuilt, label="serial")
        assert report.ok, "\n".join(report.format_lines())

    def test_parallel_build_is_identical(self, bike_bundle):
        _, facts, cube = bike_bundle
        parallel = ParallelDwarfBuilder(
            cube.schema, mode="thread", min_parallel_tuples=1
        ).build(facts)
        report = check_build_equivalence(cube, parallel)
        assert report.ok, "\n".join(report.format_lines())

    def test_divergent_cubes_flagged(self, sample_facts, sample_cube):
        rows = [tuple(fact.keys) + (fact.measure,) for fact in sample_facts]
        rows[-1] = rows[-1][:-1] + (rows[-1][-1] + 1,)
        other = DwarfBuilder(sample_facts.schema).build(rows)
        report = check_build_equivalence(sample_cube, other)
        assert rules_of(report) == {"dwarf.parallel-equivalence"}
