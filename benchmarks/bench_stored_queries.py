"""Stored-cube point-query latency per schema (paper §7's direction).

The paper stores cubes so they can be queried "for future retrieval and
querying"; this bench measures point queries answered directly against
each schema's storage — the workload that justifies NoSQL-Min's
secondary indexes and exposes MySQL-Min's reconstruction cost.
"""

import pytest

from repro.bench.datasets import load_dataset
from repro.dwarf.cell import ALL
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper
from repro.mapping.stored_query import stored_point_query

from benchmarks.conftest import report_table

SCHEMAS = list(MAPPER_FACTORIES)
N_QUERIES = 50

MEASURED = {}


def _query_vectors(cube, count):
    """A deterministic mix of full-point and partial-ALL queries."""
    stations = cube.members("station")
    days = cube.members("day")
    vectors = []
    for index in range(count):
        vector = [ALL] * cube.schema.n_dimensions
        vector[cube.schema.dimension_index("station")] = stations[index % len(stations)]
        if index % 2:
            vector[cube.schema.dimension_index("day")] = days[index % len(days)]
        vectors.append(vector)
    return vectors


@pytest.mark.parametrize("schema_name", SCHEMAS)
def test_stored_point_queries(benchmark, schema_name):
    bundle = load_dataset("Week")
    mapper = make_mapper(schema_name)
    schema_id = mapper.store(bundle.cube, probe_size=False)
    vectors = _query_vectors(bundle.cube, N_QUERIES)
    expected = [bundle.cube.value(v) for v in vectors]

    def run_queries():
        return [stored_point_query(mapper, schema_id, v) for v in vectors]

    answers = benchmark.pedantic(run_queries, rounds=1, iterations=1)
    assert answers == expected

    per_query_ms = benchmark.stats["mean"] * 1000 / N_QUERIES
    MEASURED[schema_name] = per_query_ms
    rows = report_table(
        "Stored-cube point queries (ms/query, Week)", SCHEMAS,
        note="NoSQL-Min uses its secondary indexes; MySQL-Min must reconstruct nodes",
    )
    rows.setdefault("latency", [None] * len(SCHEMAS))
    rows["latency"][SCHEMAS.index(schema_name)] = round(per_query_ms, 2)
