"""Stored-cube point-query latency per schema (paper §7's direction).

The paper stores cubes so they can be queried "for future retrieval and
querying"; this bench measures point queries answered directly against
each schema's storage — the workload that justifies NoSQL-Min's
secondary indexes and exposes MySQL-Min's reconstruction cost.

Run standalone (not under pytest) for the read-path cache comparison::

    PYTHONPATH=src python benchmarks/bench_stored_queries.py
    PYTHONPATH=src python benchmarks/bench_stored_queries.py --quick

The standalone mode times the NoSQL-DWARF walk in three cache
configurations — uncached (every read re-decompresses its SSTable
block), block cache only, and block + row cache — plus a cold-vs-warm
pass per schema, asserting the answers identical to
``DwarfCube.value`` throughout.  Emits machine-readable JSON (``--out``,
default ``BENCH_stored_queries.json``) so later PRs can track the
trajectory; CI asserts a nonzero warm block-cache hit rate from it.
The companion ``bench_ablation_blockformat.py`` covers the *filtered*
stored-cube workload — row-major vs. columnar SSTable blocks with
zone-map skipping (``BENCH_columnar_blocks.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from contextlib import contextmanager
from typing import Dict, List

import pytest

from repro.bench.datasets import current_scale, load_dataset
from repro.dwarf.cell import ALL
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper
from repro.mapping.stored_query import explain_strategy, stored_point_query

try:
    from benchmarks._timing import gc_paused, telemetry_snapshot, timed
except ImportError:  # standalone `python benchmarks/bench_*.py`: script dir on path
    from _timing import gc_paused, telemetry_snapshot, timed

SCHEMAS = list(MAPPER_FACTORIES)
N_QUERIES = 50

MEASURED = {}


def _query_vectors(cube, count):
    """A deterministic mix of full-point and partial-ALL queries."""
    stations = cube.members("station")
    days = cube.members("day")
    vectors = []
    for index in range(count):
        vector = [ALL] * cube.schema.n_dimensions
        vector[cube.schema.dimension_index("station")] = stations[index % len(stations)]
        if index % 2:
            vector[cube.schema.dimension_index("day")] = days[index % len(days)]
        vectors.append(vector)
    return vectors


@pytest.mark.parametrize("schema_name", SCHEMAS)
def test_stored_point_queries(benchmark, schema_name):
    from benchmarks.conftest import report_table

    bundle = load_dataset("Week")
    mapper = make_mapper(schema_name)
    schema_id = mapper.store(bundle.cube, probe_size=False)
    vectors = _query_vectors(bundle.cube, N_QUERIES)
    expected = [bundle.cube.value(v) for v in vectors]

    def run_queries():
        return [stored_point_query(mapper, schema_id, v) for v in vectors]

    answers = benchmark.pedantic(run_queries, rounds=1, iterations=1)
    assert answers == expected

    per_query_ms = benchmark.stats["mean"] * 1000 / N_QUERIES
    MEASURED[schema_name] = per_query_ms
    rows = report_table(
        "Stored-cube point queries (ms/query, Week)", SCHEMAS,
        note="NoSQL-Min uses its secondary indexes; MySQL-Min must reconstruct nodes",
    )
    rows.setdefault("latency", [None] * len(SCHEMAS))
    rows["latency"][SCHEMAS.index(schema_name)] = round(per_query_ms, 2)


# ----------------------------------------------------------------------
# standalone cache-comparison mode
# ----------------------------------------------------------------------
@contextmanager
def _cache_env(block_bytes=None, row_bytes=None):
    """Temporarily pin the cache budgets (read at table-creation time)."""
    names = ("REPRO_BLOCK_CACHE_BYTES", "REPRO_ROW_CACHE_BYTES")
    saved = {name: os.environ.get(name) for name in names}
    if block_bytes is not None:
        os.environ["REPRO_BLOCK_CACHE_BYTES"] = str(block_bytes)
    if row_bytes is not None:
        os.environ["REPRO_ROW_CACHE_BYTES"] = str(row_bytes)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _flush_all(mapper) -> None:
    """Materialise every column family so queries hit real SSTables —
    the reload-later scenario the stored-query layer exists for."""
    if hasattr(mapper, "keyspace_name"):
        for table in mapper.engine.keyspace(mapper.keyspace_name).tables:
            table.flush()


def _cache_stats(mapper) -> Dict[str, Dict[str, int]]:
    """Aggregate row/block cache counters across the mapper's tables."""
    totals = {
        "row_cache": {"hits": 0, "misses": 0, "evictions": 0, "entries": 0},
        "block_cache": {"hits": 0, "misses": 0, "evictions": 0, "entries": 0},
    }
    if not hasattr(mapper, "keyspace_name"):
        return totals
    for table in mapper.engine.keyspace(mapper.keyspace_name).tables:
        stats = table.stats()
        for label, cache in (("row_cache", stats.row_cache), ("block_cache", stats.block_cache)):
            totals[label]["hits"] += cache.hits
            totals[label]["misses"] += cache.misses
            totals[label]["evictions"] += cache.evictions
            totals[label]["entries"] += cache.entries
    return totals


def _stats_delta(after: Dict, before: Dict) -> Dict[str, Dict[str, int]]:
    return {
        label: {
            "hits": after[label]["hits"] - before[label]["hits"],
            "misses": after[label]["misses"] - before[label]["misses"],
            "evictions": after[label]["evictions"] - before[label]["evictions"],
            "entries": after[label]["entries"],
        }
        for label in after
    }


def _timed_pass(mapper, schema_id, vectors):
    """One full query pass: ``(answers, seconds)``."""
    with gc_paused():
        return timed(
            lambda: [stored_point_query(mapper, schema_id, v) for v in vectors],
            label="bench.query_pass",
        )


def bench_nosql_dwarf_configs(bundle, vectors, expected, repeats: int) -> Dict:
    """The headline: NoSQL-DWARF in three cache configurations.

    *uncached* re-decompresses an SSTable block for every cell read,
    *block-only* decodes each block once (row cache off isolates the
    block cache, so its warm hit rate is meaningful), *full* adds the
    row cache on top.  Warm times are best-of ``repeats`` repeated
    passes; answers must match the in-memory cube in every pass.
    """
    configs = {
        "uncached": dict(block_bytes=0, row_bytes=0),
        "block_only": dict(row_bytes=0),
        "full": dict(),
    }
    results: Dict[str, Dict] = {}
    for label, overrides in configs.items():
        with _cache_env(**overrides):
            mapper = make_mapper("NoSQL-DWARF")
        schema_id = mapper.store(bundle.cube, probe_size=False)
        _flush_all(mapper)
        cold_answers, cold_s = _timed_pass(mapper, schema_id, vectors)
        after_cold = _cache_stats(mapper)
        warm_best = float("inf")
        warm_answers = None
        for _ in range(repeats):
            warm_answers, elapsed = _timed_pass(mapper, schema_id, vectors)
            warm_best = min(warm_best, elapsed)
        warm_delta = _stats_delta(_cache_stats(mapper), after_cold)
        results[label] = {
            "cold_s": cold_s,
            "warm_s": warm_best,
            "answers_identical": cold_answers == expected and warm_answers == expected,
            "warm_pass_cache_delta": warm_delta,
        }
    uncached_warm = results["uncached"]["warm_s"]
    for label in ("block_only", "full"):
        results[label]["warm_speedup_vs_uncached"] = uncached_warm / results[label]["warm_s"]
    return results


def bench_all_schemas(bundle, vectors, expected, repeats: int) -> Dict:
    """Cold-vs-warm pass per schema with the default cache budgets.

    Each cell also records the strategy's access plans (one EXPLAIN per
    statement shape, shared :mod:`repro.query` vocabulary) and the
    session plan-cache hits the warm passes generated — CI asserts the
    latter is nonzero, i.e. warm queries replay compiled plans instead
    of re-parsing.
    """
    per_schema: Dict[str, Dict] = {}
    for name in SCHEMAS:
        mapper = make_mapper(name)
        schema_id = mapper.store(bundle.cube, probe_size=False)
        _flush_all(mapper)
        cold_answers, cold_s = _timed_pass(mapper, schema_id, vectors)
        hits_before_warm = mapper.session.plan_cache.stats().hits
        warm_best = float("inf")
        warm_answers = None
        for _ in range(repeats):
            warm_answers, elapsed = _timed_pass(mapper, schema_id, vectors)
            warm_best = min(warm_best, elapsed)
        warm_plan_hits = mapper.session.plan_cache.stats().hits - hits_before_warm
        per_schema[name] = {
            "cold_s": cold_s,
            "warm_s": warm_best,
            "cold_ms_per_query": cold_s * 1000 / len(vectors),
            "warm_ms_per_query": warm_best * 1000 / len(vectors),
            "warm_speedup_vs_cold": cold_s / warm_best if warm_best else float("inf"),
            "answers_identical": cold_answers == expected and warm_answers == expected,
            "warm_plan_cache_hits": warm_plan_hits,
            "explain": explain_strategy(mapper, schema_id),
        }
    return per_schema


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="Month", help="dataset name (default Month)")
    parser.add_argument("--queries", type=int, default=N_QUERIES, help="queries per pass")
    parser.add_argument("--repeats", type=int, default=3, help="best-of warm repeats")
    parser.add_argument("--out", default="BENCH_stored_queries.json", help="JSON output path")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: Day dataset, 20 queries, single warm repeat",
    )
    args = parser.parse_args(argv)

    dataset = "Day" if args.quick else args.dataset
    n_queries = 20 if args.quick else args.queries
    repeats = 1 if args.quick else args.repeats

    bundle = load_dataset(dataset)
    vectors = _query_vectors(bundle.cube, n_queries)
    expected = [bundle.cube.value(v) for v in vectors]

    configs = bench_nosql_dwarf_configs(bundle, vectors, expected, repeats)
    per_schema = bench_all_schemas(bundle, vectors, expected, repeats)

    identical = all(cell["answers_identical"] for cell in configs.values()) and all(
        cell["answers_identical"] for cell in per_schema.values()
    )
    report = {
        "bench": "stored_queries",
        "dataset": dataset,
        "n_tuples": bundle.n_tuples,
        "n_queries": n_queries,
        "repeats": repeats,
        "repro_scale": current_scale(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "answers_identical": identical,
        "nosql_dwarf_configs": configs,
        "per_schema": per_schema,
        "telemetry": telemetry_snapshot(),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"dataset={dataset} queries={n_queries} repeats={repeats} "
          f"answers_identical={identical}")
    for label in ("uncached", "block_only", "full"):
        cell = configs[label]
        speedup = cell.get("warm_speedup_vs_uncached")
        suffix = f"   vs uncached {speedup:.2f}x" if speedup else ""
        print(f"NoSQL-DWARF {label:10s} cold {cell['cold_s'] * 1000:8.1f} ms   "
              f"warm {cell['warm_s'] * 1000:8.1f} ms{suffix}")
    block_delta = configs["block_only"]["warm_pass_cache_delta"]["block_cache"]
    print(f"            block-only warm pass: {block_delta['hits']} block hit(s), "
          f"{block_delta['misses']} miss(es)")
    for name, cell in per_schema.items():
        print(f"{name:12s} cold {cell['cold_ms_per_query']:7.3f} ms/q   "
              f"warm {cell['warm_ms_per_query']:7.3f} ms/q   "
              f"warm speedup {cell['warm_speedup_vs_cold']:.2f}x   "
              f"plan-cache hits {cell['warm_plan_cache_hits']}")
        for label, rows in cell["explain"].items():
            pipeline = " -> ".join(
                row["node"] + (f"[{row['detail']}]" if row["detail"] else "")
                for row in rows
            )
            print(f"{'':12s}   {label}: {pipeline}")
    print(f"wrote {args.out}")

    if not identical:
        print("FAIL: stored-query answers diverged from DwarfCube.value", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
