"""Scatter-gather stored-cube queries over a shard × worker grid.

The sharded keyspace layer (docs/parallel_query.md) divides the
NoSQL-DWARF column families across a consistent-hash ring and lets the
query kernel scatter full scans and decomposable aggregates shard by
shard.  This bench measures the two stored-query shapes that scatter —
the ``COUNT(*)`` cube audit (``stored_cell_count``) and the full-scan
``stored_select(strategy="scan")`` — over a ``(REPRO_SHARDS,
REPRO_WORKERS)`` grid, asserting byte-identical answers at every point.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_query.py          # Month
    PYTHONPATH=src python benchmarks/bench_parallel_query.py --quick  # CI smoke

Two cubes share the keyspace so the pushed ``schema_id = ?0`` predicate
has blocks to refute: the measured cube's count must *skip* the other
cube's zone-refuted blocks unread.  The headline is the count query: a
compacted shard counts predicate masks via ``SSTable.count_filtered``
without materialising a single row, while the single-shard classic path
decodes every surviving row.  The scan query is expected ~flat on a
single-CPU container (the GIL serialises row decode); it is here to pin
that scatter never changes its answers.  Emits machine-readable JSON
(``--out``, default ``BENCH_parallel_query.json``); CI asserts the
count speedup and the nonzero skip count from it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from contextlib import contextmanager
from typing import Dict, List

from repro.bench.datasets import current_scale, load_dataset
from repro.mapping.registry import make_mapper
from repro.mapping.stored_query import stored_cell_count, stored_select
from repro.telemetry import get_tracer

try:
    from benchmarks._timing import gc_paused, telemetry_snapshot, timed
except ImportError:  # standalone `python benchmarks/bench_*.py`
    from _timing import gc_paused, telemetry_snapshot, timed

#: (shards, workers) grid points; (1, 1) is the pre-sharding baseline.
GRID = ((1, 1), (2, 2), (4, 4))


@contextmanager
def _env(**overrides):
    saved = {name: os.environ.get(name) for name in overrides}
    os.environ.update({name: str(value) for name, value in overrides.items()})
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _build_mapper(bundle, other_bundle, shards):
    """A NoSQL-DWARF keyspace holding two cubes, compacted to the
    steady state (one SSTable per shard; the count fast path's shape).
    Returns ``(mapper, measured_schema_id)``."""
    with _env(REPRO_SHARDS=shards):
        mapper = make_mapper("NoSQL-DWARF")
    other_id = mapper.store(other_bundle.cube, probe_size=False)
    schema_id = mapper.store(bundle.cube, probe_size=False)
    assert other_id != schema_id
    for table in mapper.engine.keyspace(mapper.keyspace_name).tables:
        table.compact()
    return mapper, schema_id


def _cell_family(mapper):
    return mapper.engine.keyspace(mapper.keyspace_name).table("dwarf_cell")


def _per_shard_skips(family) -> List[int]:
    return [
        sum(sstable.blocks_skipped for sstable in shard.sstables)
        for shard in family.shards
    ]


def _span_count(spans, name) -> int:
    total = 0
    for span in spans:
        if span["name"] == name:
            total += span["count"]
        total += _span_count(span.get("children", ()), name)
    return total


def _measure(fn, repeats, label):
    """Best-of-``repeats`` seconds plus the last pass's answer and the
    number of ``query.shard_scan`` spans one pass opens."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    best, answer = float("inf"), None
    try:
        for _ in range(repeats):
            tracer.enabled = True
            tracer.reset()
            with gc_paused():
                answer, elapsed = timed(fn, label=label)
            best = min(best, elapsed)
        shard_scans = _span_count(tracer.merged(), "query.shard_scan")
    finally:
        tracer.enabled = was_enabled
        tracer.reset()
    return answer, best, shard_scans


def bench_grid(bundle, other_bundle, repeats: int) -> Dict[str, Dict]:
    results: Dict[str, Dict] = {}
    for shards, workers in GRID:
        mapper, schema_id = _build_mapper(bundle, other_bundle, shards)
        family = _cell_family(mapper)
        with _env(REPRO_WORKERS=workers):
            skips_before = _per_shard_skips(family)
            count, count_s, count_scans = _measure(
                lambda: stored_cell_count(mapper, schema_id),
                repeats, "bench.parallel.count_pass",
            )
            count_skips = [
                after - before
                for after, before in zip(_per_shard_skips(family), skips_before)
            ]
            scan_rows, scan_s, scan_scans = _measure(
                lambda: sorted(stored_select(mapper, schema_id, strategy="scan")),
                repeats, "bench.parallel.scan_pass",
            )
        results[f"{shards}x{workers}"] = {
            "shards": shards,
            "workers": workers,
            "count": count,
            "count_s": count_s,
            "count_shard_scan_spans": count_scans,
            "count_pass_blocks_skipped_per_shard": count_skips,
            "scan_rows": len(scan_rows),
            "scan_s": scan_s,
            "scan_shard_scan_spans": scan_scans,
            "_scan_answer": scan_rows,
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="Month", help="measured cube (default Month)")
    parser.add_argument("--other", default="Day", help="co-resident cube (default Day)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--out", default="BENCH_parallel_query.json", help="JSON output path")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: Day-scale measured cube, single repeat",
    )
    args = parser.parse_args(argv)

    dataset = "Day" if args.quick else args.dataset
    other = "Week" if args.quick else args.other
    repeats = 1 if args.quick else args.repeats

    bundle = load_dataset(dataset)
    other_bundle = load_dataset(other)
    grid = bench_grid(bundle, other_bundle, repeats)

    baseline = grid["1x1"]
    scan_reference = baseline.pop("_scan_answer")
    identical = True
    for key, cell in grid.items():
        if key != "1x1":
            identical &= cell["count"] == baseline["count"]
            identical &= cell.pop("_scan_answer") == scan_reference
        cell["count_speedup_vs_1x1"] = baseline["count_s"] / cell["count_s"]
        cell["scan_speedup_vs_1x1"] = baseline["scan_s"] / cell["scan_s"]

    headline = grid[f"{GRID[-1][0]}x{GRID[-1][1]}"]
    skips = sum(headline["count_pass_blocks_skipped_per_shard"])
    report = {
        "bench": "parallel_query",
        "dataset": dataset,
        "other_dataset": other,
        "n_tuples": bundle.n_tuples,
        "repeats": repeats,
        "repro_scale": current_scale(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "answers_identical": identical,
        "grid": grid,
        "telemetry": telemetry_snapshot(),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"dataset={dataset} (+{other} co-resident) repeats={repeats} "
          f"answers_identical={identical}")
    for key, cell in grid.items():
        print(f"{key:4s} count {cell['count_s'] * 1000:8.2f} ms "
              f"({cell['count_speedup_vs_1x1']:5.2f}x, "
              f"{cell['count_shard_scan_spans']} shard span(s), "
              f"skips {cell['count_pass_blocks_skipped_per_shard']})   "
              f"scan {cell['scan_s'] * 1000:8.2f} ms "
              f"({cell['scan_speedup_vs_1x1']:5.2f}x)")
    print(f"wrote {args.out}")

    failures = []
    if not identical:
        failures.append("answers diverged across the shard grid")
    if skips <= 0:
        failures.append("headline count pass skipped zero zone-refuted blocks")
    if not args.quick and headline["count_speedup_vs_1x1"] < 2.0:
        failures.append(
            f"count speedup {headline['count_speedup_vs_1x1']:.2f}x < 2x at "
            f"{GRID[-1][0]} shards"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
