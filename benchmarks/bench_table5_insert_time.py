"""Table 5 — DWARF storage time performance (ms to insert a DWARF cube).

Times the paper's insert pipeline per (schema, dataset) cell: the BFS
transformation traversal plus the bulk insert of every node/cell row
(``store`` with the size probe deferred, exactly the paper's timed
region).
"""

import pytest

from repro.bench.datasets import DATASETS, load_dataset
from repro.bench.runner import PAPER_TABLE5_MS
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper

from benchmarks.conftest import report_table

COLUMNS = [spec.name for spec in DATASETS]
SCHEMAS = list(MAPPER_FACTORIES)

MEASURED = {}

_MAPPERS = {}


def _mapper(schema_name):
    if schema_name not in _MAPPERS:
        _MAPPERS[schema_name] = make_mapper(schema_name)
    return _MAPPERS[schema_name]


@pytest.mark.parametrize("dataset", COLUMNS)
@pytest.mark.parametrize("schema_name", SCHEMAS)
def test_table5_cell(benchmark, schema_name, dataset):
    bundle = load_dataset(dataset)
    mapper = _mapper(schema_name)

    def bulk_insert():
        return mapper.store(bundle.cube, probe_size=False)

    # Two rounds (min) for the closely-matched schemas; NoSQL-Min's wide
    # margin doesn't justify doubling its multi-minute SMonth cell.
    rounds = 1 if schema_name == "NoSQL-Min" else 2
    schema_id = benchmark.pedantic(
        bulk_insert, setup=lambda: mapper.reset(), rounds=rounds, iterations=1
    )
    info = mapper.info(schema_id)
    assert info.cell_count == bundle.cube.stats.cell_count

    insert_ms = benchmark.stats["min"] * 1000.0
    MEASURED.setdefault(schema_name, {})[dataset] = insert_ms

    rows = report_table(
        "Table 5: time (ms) to insert a DWARF cube",
        COLUMNS,
        note="paper values are full-scale on 2013 hardware; measured are scaled",
    )
    rows.setdefault(f"{schema_name} (paper)", list(PAPER_TABLE5_MS[schema_name]))
    measured_label = f"{schema_name} (measured)"
    rows.setdefault(measured_label, [None] * len(COLUMNS))
    rows[measured_label][COLUMNS.index(dataset)] = round(insert_ms)


def test_table5_shape(benchmark):
    """The insert-time orderings of the paper's analysis (§5.1)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(len(MEASURED[s]) == len(COLUMNS) for s in SCHEMAS)
    # Single-round wall-clock times jitter; judge the shape on the three
    # largest datasets where the signal dominates.
    for dataset in ("Month", "TMonth", "SMonth"):
        times = {schema: MEASURED[schema][dataset] for schema in SCHEMAS}
        # "The NoSQL-DWARF schema performed best" (15% allowance: MySQL-Min
        # runs genuinely close in this simulation — see EXPERIMENTS.md).
        assert times["NoSQL-DWARF"] <= 1.15 * min(times.values()), (dataset, times)
        # "The NoSQL-Min schema performed worst overall" — by a wide margin.
        assert times["NoSQL-Min"] == max(times.values()), (dataset, times)
        assert times["NoSQL-Min"] > 3.0 * times["NoSQL-DWARF"], (dataset, times)
        # The relational link tables make MySQL-DWARF slower than MySQL-Min
        # (strict at the two largest sizes; 20% jitter allowance at Month,
        # where single-round cells are only ~1.5 s).
        slack = 0.8 if dataset == "Month" else 1.0
        assert times["MySQL-DWARF"] > slack * times["MySQL-Min"], (dataset, times)

    # Growth is roughly linear in cube size: SMonth should cost an order
    # of magnitude more than Day for every schema, as in the paper.
    for schema in SCHEMAS:
        assert MEASURED[schema]["SMonth"] > 10 * MEASURED[schema]["Day"], schema
