"""Ablation — suffix coalescing on/off.

DWARF's headline claim ([12], adopted by the paper): suffix coalescing
detects duplicate aggregates *before* they are computed.  Disabling it
materialises every view privately; this bench quantifies the node/cell
blow-up and the build-time cost on the bike data.
"""

import pytest

from repro.bench.datasets import load_dataset
from repro.dwarf.builder import DwarfBuilder
from repro.smartcity.bikes import bikes_pipeline

from benchmarks.conftest import report_table

#: Without coalescing cube size explodes; keep to the small datasets.
DATASET_SUBSET = ["Day", "Week"]


@pytest.mark.parametrize("dataset", DATASET_SUBSET)
@pytest.mark.parametrize("coalesce", [True, False], ids=["coalesced", "exploded"])
def test_coalescing_ablation(benchmark, dataset, coalesce):
    bundle = load_dataset(dataset)
    facts = bikes_pipeline().extract(bundle.documents).sorted()
    builder = DwarfBuilder(facts.schema, coalesce=coalesce)

    cube = benchmark.pedantic(lambda: builder.build(facts), rounds=1, iterations=1)
    stats = cube.stats
    assert cube.total() == bundle.cube.total()

    label = "coalesced" if coalesce else "exploded"
    rows = report_table(
        "Ablation: suffix coalescing (cells / build ms)", DATASET_SUBSET
    )
    for metric in ("cells", "build ms"):
        rows.setdefault(f"{label} {metric}", [None] * len(DATASET_SUBSET))
    column = DATASET_SUBSET.index(dataset)
    rows[f"{label} cells"][column] = stats.cell_count
    rows[f"{label} build ms"][column] = round(benchmark.stats["mean"] * 1000)

    if coalesce:
        assert stats.shared_node_count > 0
    else:
        assert stats.shared_node_count == 0


def test_coalescing_shrinks_cube(benchmark):
    bundle = load_dataset("Day")
    facts = bikes_pipeline().extract(bundle.documents).sorted()

    def both():
        on = DwarfBuilder(facts.schema, coalesce=True).build(facts)
        off = DwarfBuilder(facts.schema, coalesce=False).build(facts)
        return on, off

    on, off = benchmark.pedantic(both, rounds=1, iterations=1)
    # The compression claim: coalescing must cut the structure hard.
    assert off.stats.node_count > 2 * on.stats.node_count
    assert off.stats.cell_count > 2 * on.stats.cell_count
