"""Table 4 — DWARF storage performance (MB used to store a DWARF cube).

Stores every dataset's cube under all four schemas and reports on-disk
size next to the paper's values.  The benchmarked operation is the
paper's ``size_as_mb`` probe (§4); the store itself runs as setup.
Insert timing is Table 5's job (bench_table5_insert_time.py).
"""

import pytest

from repro.bench.datasets import DATASETS, load_dataset
from repro.bench.runner import PAPER_TABLE4_MB
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper

from benchmarks.conftest import report_table

COLUMNS = [spec.name for spec in DATASETS]
SCHEMAS = list(MAPPER_FACTORIES)

#: Measured sizes per schema, filled as cells run (file-scope registry so
#: the final shape test can assert orderings across all cells).
MEASURED = {}

_MAPPERS = {}


def _mapper(schema_name):
    if schema_name not in _MAPPERS:
        _MAPPERS[schema_name] = make_mapper(schema_name)
    return _MAPPERS[schema_name]


@pytest.mark.parametrize("dataset", COLUMNS)
@pytest.mark.parametrize("schema_name", SCHEMAS)
def test_table4_cell(benchmark, schema_name, dataset):
    bundle = load_dataset(dataset)
    mapper = _mapper(schema_name)
    mapper.reset()
    schema_id = mapper.store(bundle.cube, probe_size=False)

    size_mb = benchmark.pedantic(
        lambda: mapper.probe_size(schema_id), rounds=1, iterations=1
    )
    exact_mb = mapper.size_bytes() / (1024 * 1024)
    assert size_mb == int(exact_mb)
    assert mapper.info(schema_id).size_as_mb == size_mb
    MEASURED.setdefault(schema_name, {})[dataset] = exact_mb

    rows = report_table(
        "Table 4: size (MB) used to store a DWARF cube",
        COLUMNS,
        note="paper values are full-scale; measured values are REPRO_SCALE-scaled",
    )
    rows.setdefault(f"{schema_name} (paper)", list(PAPER_TABLE4_MB[schema_name]))
    measured_label = f"{schema_name} (measured)"
    rows.setdefault(measured_label, [None] * len(COLUMNS))
    rows[measured_label][COLUMNS.index(dataset)] = round(exact_mb, 2)


def test_table4_shape(benchmark):
    """The size orderings the paper reports, asserted on every dataset."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(len(MEASURED[s]) == len(COLUMNS) for s in SCHEMAS), (
        "run the full matrix before the shape check"
    )
    for dataset in COLUMNS:
        sizes = {schema: MEASURED[schema][dataset] for schema in SCHEMAS}
        # MySQL-DWARF is the largest store at every size (paper §5.1).
        assert sizes["MySQL-DWARF"] == max(sizes.values()), (dataset, sizes)
        # The secondary indexes make NoSQL-Min bigger than NoSQL-DWARF.
        assert sizes["NoSQL-Min"] > sizes["NoSQL-DWARF"], (dataset, sizes)
        # MySQL-Min and NoSQL-DWARF stay close (within 35% — the paper has
        # them within a few percent, crossing at SMonth).
        ratio = sizes["MySQL-Min"] / sizes["NoSQL-DWARF"]
        assert 0.65 <= ratio <= 1.35, (dataset, sizes)

    rows = report_table(
        "Table 4 §5.1 note: Bao et al. [1] comparison",
        ["tuples", "dims", "size MB"],
    )
    rows["Bao et al. standard DWARF (paper)"] = [400_000, 8, 200]
    rows["this paper, NoSQL-DWARF @ SMonth (paper)"] = [1_181_344, 8, 182]
    smonth = load_dataset("SMonth")
    rows["this run, NoSQL-DWARF @ SMonth (measured)"] = [
        smonth.n_tuples, 8, round(MEASURED["NoSQL-DWARF"]["SMonth"], 1),
    ]
