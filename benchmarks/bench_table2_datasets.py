"""Table 2 — the datasets used in the experiments.

Regenerates the five bike-feed periods, reporting raw document size (MB)
and tuple count next to the paper's values, and benchmarks the ETL
extraction over each period's documents.
"""

import pytest

from repro.bench.datasets import DATASETS, current_scale, load_dataset
from repro.smartcity.bikes import bikes_pipeline

from benchmarks.conftest import report_table

COLUMNS = [spec.name for spec in DATASETS]


@pytest.mark.parametrize("spec", DATASETS, ids=lambda s: s.name)
def test_table2_dataset(benchmark, spec):
    bundle = load_dataset(spec.name)

    def extract():
        return bikes_pipeline().extract(bundle.documents)

    facts = benchmark.pedantic(extract, rounds=1, iterations=1)
    assert len(facts) == bundle.n_tuples

    scale = current_scale()
    column = COLUMNS.index(spec.name)

    rows = report_table(
        "Table 2: datasets (size MB / number of tuples)",
        COLUMNS,
        note=(
            "paper rows are the full-size datasets; measured rows are this "
            "run's REPRO_SCALE-scaled regeneration"
        ),
    )
    for label in (
        "paper size (MB)", "paper tuples", "paper tuples (scaled)",
        "measured size (MB)", "measured tuples",
    ):
        rows.setdefault(label, [None] * len(COLUMNS))
    rows["paper size (MB)"][column] = spec.paper_size_mb
    rows["paper tuples"][column] = spec.paper_tuples
    rows["paper tuples (scaled)"][column] = round(spec.paper_tuples * scale)
    rows["measured size (MB)"][column] = round(bundle.documents.size_mb, 2)
    rows["measured tuples"][column] = bundle.n_tuples

    # Shape: the per-record document density must sit near the paper's
    # ~300 B/record (Table 2: 2.1 MB / 7358 tuples).
    per_record = bundle.documents.size_bytes / bundle.n_tuples
    assert 200 <= per_record <= 500

    # Tuple counts hit the scaled paper counts exactly.
    assert bundle.n_tuples == max(1, round(spec.paper_tuples * scale))


def test_table2_monotone_growth(benchmark):
    bundles = benchmark.pedantic(
        lambda: [load_dataset(spec.name) for spec in DATASETS], rounds=1, iterations=1
    )
    sizes = [bundle.documents.size_bytes for bundle in bundles]
    assert sizes == sorted(sizes)
    tuples = [bundle.n_tuples for bundle in bundles]
    assert tuples == sorted(tuples)
