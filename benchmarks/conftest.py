"""Shared benchmark plumbing: the paper-vs-measured report.

Every bench registers its measured rows here; after the run a terminal
summary prints each of the paper's tables next to this run's values
(scaled by ``REPRO_SCALE``), which is also what EXPERIMENTS.md records.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.bench.datasets import current_scale
from repro.bench.reporting import format_table

#: title -> (columns, ordered rows {label: [values]}, note)
_REPORTS: "OrderedDict[str, tuple]" = OrderedDict()


def pytest_configure(config):
    # Collector pauses are harness noise, not engine cost (the systems the
    # engines simulate run outside CPython); keep them out of timed regions.
    if hasattr(config.option, "benchmark_disable_gc"):
        config.option.benchmark_disable_gc = True


def report_table(title: str, columns, note: str = ""):
    """Get (or create) the mutable row dict for one report table."""
    if title not in _REPORTS:
        _REPORTS[title] = (list(columns), OrderedDict(), note)
    return _REPORTS[title][1]


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep(
        "=", f"paper reproduction report (REPRO_SCALE={current_scale():g})"
    )
    for title, (columns, rows, note) in _REPORTS.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(format_table(title, columns, rows, note))
    terminalreporter.write_line("")
