"""Ingest fast-path benchmark: parallel build + zero-parse compiled store.

Measures the two halves of the bulk-ingest pipeline introduced with
``ParallelDwarfBuilder`` and the compiled-statement store path:

* **Build** — serial ``DwarfBuilder`` vs ``ParallelDwarfBuilder`` over the
  same sorted tuple set.  Reports the wall-clock times plus a
  *critical-path* speedup: partitions are timed individually and assigned
  to workers with the pool's greedy schedule, so the speedup reflects what
  the partitioning achieves when every worker has its own core.  On
  single-core containers (``cpu_count == 1``, recorded in the JSON) the
  wall-clock numbers cannot show parallelism; the critical path is the
  honest hardware-independent measure.  Structural identity with the
  serial cube is asserted on every run.

* **Store** — one cube persisted through the three statement paths of the
  NoSQL-DWARF mapper: raw statement text (a parse per row), prepared
  statements (parse once, plan per execute), and compiled statements
  (zero parse, rows stream straight into the memtable).  A secondary
  sweep compares prepared vs compiled for all four mappers.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_parallel_ingest.py
    PYTHONPATH=src python benchmarks/bench_parallel_ingest.py --quick

Emits machine-readable JSON (``--out``, default
``BENCH_parallel_ingest.json``) so later PRs can track the trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Dict, List

from repro.bench.datasets import current_scale, load_dataset
from repro.core.tuples import TupleSet
from repro.dwarf.builder import DwarfBuilder
from repro.dwarf.parallel import ParallelDwarfBuilder, _build_partition, resolve_workers
from repro.mapping.base import transform_cube
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper
from repro.nosqldb.engine import NoSQLEngine

try:
    from benchmarks._timing import best_of, gc_paused, telemetry_snapshot, timed
except ImportError:  # standalone `python benchmarks/bench_*.py`: script dir on path
    from _timing import best_of, gc_paused, telemetry_snapshot, timed


def bench_build(bundle, workers: int, repeats: int) -> Dict:
    schema = bundle.cube.schema
    facts = TupleSet(
        schema, (keys + (value,) for keys, value in bundle.cube.leaves())
    )
    ordered = facts.sorted()  # presort once so both paths time construction

    serial_cube = DwarfBuilder(schema).build(ordered)
    serial_s = best_of(
        lambda: DwarfBuilder(schema).build(ordered), repeats, label="bench.build.serial"
    )

    # min_parallel_tuples=2 keeps the partitioned machinery engaged even at
    # --quick scale, where the auto heuristic would fall back to serial.
    builder = ParallelDwarfBuilder(
        schema, workers=workers, mode="thread", min_parallel_tuples=2
    )
    parallel_cube = builder.build(ordered)
    parallel_wall_s = best_of(
        lambda: builder.build(ordered), repeats, label="bench.build.parallel"
    )

    serial_records = transform_cube(serial_cube)
    parallel_records = transform_cube(parallel_cube)
    identical = (
        serial_records.nodes == parallel_records.nodes
        and serial_records.cells == parallel_records.cells
    )
    assert identical, "parallel cube diverged from the serial build"

    # Critical path: time each partition build in isolation, assign the
    # partitions to workers with the pool's greedy least-loaded schedule,
    # and add the stitch (the only serial tail).  This is the build time on
    # a machine with `workers` real cores, measured rather than
    # extrapolated; best-of over `repeats` full cycles.
    partitions = builder._partition(ordered)
    best = None
    for _ in range(repeats):
        partition_times: List[float] = []
        parts = []
        with gc_paused():
            for chunk in partitions:
                part, elapsed = timed(
                    lambda: _build_partition(schema, chunk, True),
                    label="bench.build.partition",
                )
                parts.append(part)
                partition_times.append(elapsed)
            stitched, stitch_s = timed(
                lambda: builder._stitch(
                    parts, n_source_tuples=len(ordered), pickled=False
                ),
                label="bench.build.stitch",
            )
        assert stitched.stats.cell_count == serial_cube.stats.cell_count
        loads = [0.0] * max(1, min(workers, len(partitions)))
        for cost in partition_times:
            loads[loads.index(min(loads))] += cost
        critical_path_s = max(loads) + stitch_s
        if best is None or critical_path_s < best["time_s"]:
            best = {
                "partitions": len(partitions),
                "max_partition_s": max(partition_times),
                "max_worker_load_s": max(loads),
                "stitch_s": stitch_s,
                "time_s": critical_path_s,
            }
    best["speedup"] = serial_s / best["time_s"]

    return {
        "n_facts": len(ordered),
        "serial_s": serial_s,
        "parallel_wall_s": parallel_wall_s,
        "parallel_mode": "thread",
        "wallclock_speedup": serial_s / parallel_wall_s,
        "critical_path": best,
        "identical": identical,
        "n_merges_serial": serial_cube.n_merges,
        "n_merges_parallel": parallel_cube.n_merges,
    }


def _fresh_nosql_dwarf() -> NoSQLDwarfMapper:
    mapper = NoSQLDwarfMapper(NoSQLEngine())
    mapper.install()
    return mapper


def bench_store(bundle, repeats: int, all_mappers: bool) -> Dict:
    cube = bundle.cube

    def text_store():
        mapper = _fresh_nosql_dwarf()
        session = mapper.engine.connect(mapper.keyspace_name)
        for statement in mapper.statements(cube, schema_id=1):
            session.execute(statement)

    def prepared_store():
        _fresh_nosql_dwarf().store(cube, probe_size=False, compiled=False)

    def compiled_store():
        _fresh_nosql_dwarf().store(cube, probe_size=False, compiled=True)

    text_s = best_of(text_store, repeats, label="bench.store.text")
    prepared_s = best_of(prepared_store, repeats, label="bench.store.prepared")
    compiled_s = best_of(compiled_store, repeats, label="bench.store.compiled")

    result = {
        "mapper": "NoSQL-DWARF",
        "text_s": text_s,
        "prepared_s": prepared_s,
        "compiled_s": compiled_s,
        "text_vs_compiled_speedup": text_s / compiled_s,
        "prepared_vs_compiled_speedup": prepared_s / compiled_s,
    }
    if all_mappers:
        per_mapper = {}
        for name in MAPPER_FACTORIES:
            mapper = make_mapper(name)
            _, mapper_prepared_s = timed(
                lambda: mapper.store(cube, probe_size=False, compiled=False),
                label="bench.store.prepared",
            )
            mapper.reset()
            _, mapper_compiled_s = timed(
                lambda: mapper.store(cube, probe_size=False, compiled=True),
                label="bench.store.compiled",
            )
            per_mapper[name] = {
                "prepared_s": mapper_prepared_s,
                "compiled_s": mapper_compiled_s,
                "speedup": mapper_prepared_s / mapper_compiled_s,
            }
        result["per_mapper"] = per_mapper
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="Month", help="dataset name (default Month)")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count (default: REPRO_WORKERS or cpu count, floor 2)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--out", default="BENCH_parallel_ingest.json", help="JSON output path")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: Day dataset, single repeat, NoSQL-DWARF only",
    )
    args = parser.parse_args(argv)

    dataset = "Day" if args.quick else args.dataset
    repeats = 1 if args.quick else args.repeats
    # The partitioned build needs at least two workers to mean anything,
    # even on single-core containers where only the critical path can show it.
    workers = args.workers if args.workers is not None else max(4, resolve_workers())

    bundle = load_dataset(dataset)
    build = bench_build(bundle, workers=workers, repeats=repeats)
    store = bench_store(bundle, repeats=repeats, all_mappers=not args.quick)

    report = {
        "bench": "parallel_ingest",
        "dataset": dataset,
        "n_tuples": bundle.n_tuples,
        "repro_scale": current_scale(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "workers": workers,
        "repeats": repeats,
        "build": build,
        "store": store,
        "telemetry": telemetry_snapshot(),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    cp = build["critical_path"]
    print(f"dataset={dataset} facts={build['n_facts']} workers={workers} "
          f"cpus={report['cpu_count']}")
    print(f"build   serial {build['serial_s'] * 1000:8.1f} ms   "
          f"parallel(wall) {build['parallel_wall_s'] * 1000:8.1f} ms   "
          f"wall speedup {build['wallclock_speedup']:.2f}x")
    print(f"        critical path {cp['time_s'] * 1000:8.1f} ms "
          f"({cp['partitions']} partitions, stitch {cp['stitch_s'] * 1000:.1f} ms)   "
          f"speedup {cp['speedup']:.2f}x")
    print(f"store   text {store['text_s'] * 1000:8.1f} ms   "
          f"prepared {store['prepared_s'] * 1000:8.1f} ms   "
          f"compiled {store['compiled_s'] * 1000:8.1f} ms")
    print(f"        text/compiled {store['text_vs_compiled_speedup']:.2f}x   "
          f"prepared/compiled {store['prepared_vs_compiled_speedup']:.2f}x")
    for name, cell in store.get("per_mapper", {}).items():
        print(f"        {name:12s} prepared {cell['prepared_s'] * 1000:8.1f} ms   "
              f"compiled {cell['compiled_s'] * 1000:8.1f} ms   "
              f"speedup {cell['speedup']:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
