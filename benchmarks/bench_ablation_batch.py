"""Ablation — bulk prepared inserts vs raw CQL statement text.

The paper inserts cubes "in bulk"; this bench quantifies why: executing
the Fig. 3 transformation as literal CQL text pays a parse per row, the
prepared/bound bulk path parses once per statement shape.
"""

import pytest

from repro.bench.datasets import load_dataset
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.nosqldb.engine import NoSQLEngine

from benchmarks.conftest import report_table

MODES = ["prepared-bulk", "raw-cql-text"]


def _fresh_mapper():
    mapper = NoSQLDwarfMapper(NoSQLEngine())
    mapper.install()
    return mapper


@pytest.mark.parametrize("mode", MODES)
def test_bulk_vs_raw_inserts(benchmark, mode):
    bundle = load_dataset("Day")
    cube = bundle.cube
    mapper = _fresh_mapper()

    if mode == "prepared-bulk":
        run = lambda: mapper.store(cube, probe_size=False)
    else:
        session = mapper.engine.connect(mapper.keyspace_name)

        def run():
            for statement in mapper.statements(cube, schema_id=1):
                session.execute(statement)
            return 1

    schema_id = benchmark.pedantic(run, rounds=1, iterations=1)
    rebuilt = mapper.load(schema_id, schema=cube.schema)
    assert rebuilt.total() == cube.total()

    rows = report_table("Ablation: insert path (ms, NoSQL-DWARF @ Day)", MODES)
    rows.setdefault("insert ms", [None, None])
    rows["insert ms"][MODES.index(mode)] = round(benchmark.stats["mean"] * 1000)


def test_prepared_is_faster(benchmark):
    """One timed head-to-head: the bulk path must win clearly."""
    from benchmarks._timing import timed

    bundle = load_dataset("Day")
    cube = bundle.cube

    def raw_store():
        raw_mapper = _fresh_mapper()
        session = raw_mapper.engine.connect(raw_mapper.keyspace_name)
        for statement in raw_mapper.statements(cube, schema_id=1):
            session.execute(statement)

    def contest():
        bulk_mapper = _fresh_mapper()
        _, bulk_seconds = timed(
            lambda: bulk_mapper.store(cube, probe_size=False), label="bench.bulk"
        )
        _, raw_seconds = timed(raw_store, label="bench.raw")
        return bulk_seconds, raw_seconds

    bulk_seconds, raw_seconds = benchmark.pedantic(contest, rounds=1, iterations=1)
    assert raw_seconds > 1.5 * bulk_seconds, (bulk_seconds, raw_seconds)
