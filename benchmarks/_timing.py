"""Shared timing helpers for the standalone and pytest benchmarks.

Every benchmark used to carry its own copy of the gc-paused best-of-N
loop; this module is the single home for that machinery, built on the
telemetry layer so benchmark passes show up as spans when
``REPRO_TRACE=1`` and so committed ``BENCH_*.json`` files can embed the
run's telemetry snapshot.

This file and ``repro/telemetry/`` are the only places allowed to call
``time.perf_counter`` directly (lint rule REPRO007).
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from typing import Callable, Tuple

from repro.telemetry import get_registry, get_tracer, snapshot


@contextmanager
def gc_paused():
    """Collector pauses are harness noise, not algorithm cost (mirrors
    the pytest-benchmark configuration in ``benchmarks/conftest.py``)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def timed(fn: Callable, label: str = "bench.pass") -> Tuple[object, float]:
    """Run ``fn`` once under a ``label`` span; returns ``(result, seconds)``.

    No gc pause — callers that want one wrap the whole measured region in
    :func:`gc_paused` so nested timings share a single collector state.
    """
    with get_tracer().span(label):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
    return result, elapsed


def best_of(fn: Callable, repeats: int, label: str = "bench.pass") -> float:
    """Best wall-clock seconds for ``fn`` over ``repeats`` gc-paused runs."""
    best = float("inf")
    for _ in range(repeats):
        with gc_paused():
            _, elapsed = timed(fn, label=label)
        best = min(best, elapsed)
    return best


def telemetry_snapshot() -> dict:
    """The process-wide metrics + span snapshot, for ``BENCH_*.json``.

    Cheap and always JSON-safe; with telemetry disabled it is simply
    ``{"metrics": [], "spans": [], "slow_ops": []}``.
    """
    return snapshot(get_registry(), get_tracer())
