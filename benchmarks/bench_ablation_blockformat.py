"""Ablation — row-major vs. columnar SSTable blocks (docs/columnar_blocks.md).

The columnar layout exists for exactly one workload: filtered queries
against a *stored* cube, where a pushed-down predicate probes a couple
of columns of wide cell rows.  This bench measures that workload both
ways — ``stored_select(..., strategy="scan")`` over NoSQL-DWARF built
with ``block_format="row"`` and ``"columnar"`` — cold (empty block
cache, every block decompressed) and warm (decoded blocks cached), and
records the zone-map skip and dictionary counters that explain the gap.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_ablation_blockformat.py          # Month
    PYTHONPATH=src python benchmarks/bench_ablation_blockformat.py --quick  # CI smoke

Both modes use the Month dataset (the CI job asserts nonzero zone-map
skips at Month scale); ``--quick`` trims the query list and repeats.
Every pass asserts its answers equal the in-memory
:func:`repro.dwarf.query.select`, and a cross-format sweep asserts
byte-identical ``stored_point_query`` answers on all four schemas.
Emits machine-readable JSON (``--out``, default
``BENCH_columnar_blocks.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from contextlib import contextmanager
from typing import Dict, List

from repro.bench.datasets import current_scale, load_dataset
from repro.dwarf.cell import ALL
from repro.dwarf.query import Each, In, Member, select
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper
from repro.mapping.stored_query import stored_point_query, stored_select

try:
    from benchmarks._timing import gc_paused, telemetry_snapshot, timed
except ImportError:  # standalone `python benchmarks/bench_*.py`: script dir on path
    from _timing import gc_paused, telemetry_snapshot, timed

SCHEMAS = list(MAPPER_FACTORIES)
FORMATS = ("row", "columnar")
N_SELECTS = 10
N_POINT_QUERIES = 20


@contextmanager
def _format_env(block_format: str):
    """Pin ``REPRO_BLOCK_FORMAT`` (read at table-creation time)."""
    saved = os.environ.get("REPRO_BLOCK_FORMAT")
    os.environ["REPRO_BLOCK_FORMAT"] = block_format
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_BLOCK_FORMAT", None)
        else:
            os.environ["REPRO_BLOCK_FORMAT"] = saved


def _flush_all(mapper) -> None:
    """Materialise every column family so queries hit real SSTables."""
    if hasattr(mapper, "keyspace_name"):
        for table in mapper.engine.keyspace(mapper.keyspace_name).tables:
            table.flush()


def _select_specs(cube, count: int) -> List[Dict]:
    """A deterministic mix of filtered selects: point members, IN lists,
    member+member, and a grouped (``Each``) shape that exercises the
    unkeyed ``cube_scan`` plan alongside the keyed ``cube_scan_keys``."""
    stations = cube.members("station")
    days = cube.members("day")
    specs: List[Dict] = []
    for index in range(count):
        station = stations[index % len(stations)]
        day = days[index % len(days)]
        if index % 4 == 0:
            specs.append({"station": Member(station)})
        elif index % 4 == 1:
            picks = [stations[(index + j) % len(stations)] for j in range(3)]
            specs.append({"station": In(picks), "day": Member(day)})
        elif index % 4 == 2:
            specs.append({"station": Member(station), "day": Member(day)})
        else:
            specs.append({"station": Member(station), "day": Each()})
    return specs


def _storage_stats(mapper) -> Dict[str, object]:
    """The dwarf_cell family's block-format counters (the scanned table)."""
    stats = mapper.engine.keyspace(mapper.keyspace_name).table("dwarf_cell").stats()
    return {
        "block_format": stats.block_format,
        "sstables": stats.sstables,
        "columnar_blocks": stats.columnar_blocks,
        "blocks_skipped": stats.blocks_skipped,
        "dict_hit_ratio": round(stats.dict_hit_ratio, 4),
    }


def _timed_pass(mapper, schema_id, specs, strategy):
    with gc_paused():
        return timed(
            lambda: [
                list(stored_select(mapper, schema_id, strategy=strategy, **spec))
                for spec in specs
            ],
            label=f"bench.blockformat.{strategy}_pass",
        )


def bench_filtered_selects(bundle, specs, expected, repeats: int) -> Dict:
    """The headline: filtered ``stored_select`` per block format.

    ``scan`` strategy cold and warm (best-of ``repeats``); one ``walk``
    pass per format confirms the point-read path agrees too.  Cold
    passes start with an empty block cache — the row-major pass decodes
    every block row-wise, the columnar pass skips zone-refuted blocks
    and late-materializes the survivors.
    """
    results: Dict[str, Dict] = {}
    for block_format in FORMATS:
        with _format_env(block_format):
            mapper = make_mapper("NoSQL-DWARF")
        schema_id = mapper.store(bundle.cube, probe_size=False)
        _flush_all(mapper)
        before = _storage_stats(mapper)
        cold_answers, cold_s = _timed_pass(mapper, schema_id, specs, "scan")
        after_cold = _storage_stats(mapper)
        warm_best = float("inf")
        warm_answers = None
        for _ in range(repeats):
            warm_answers, elapsed = _timed_pass(mapper, schema_id, specs, "scan")
            warm_best = min(warm_best, elapsed)
        walk_answers, walk_s = _timed_pass(mapper, schema_id, specs, "walk")
        results[block_format] = {
            "cold_s": cold_s,
            "warm_s": warm_best,
            "walk_s": walk_s,
            "answers_identical": (
                cold_answers == expected
                and warm_answers == expected
                and walk_answers == expected
            ),
            "cold_pass_blocks_skipped": (
                after_cold["blocks_skipped"] - before["blocks_skipped"]
            ),
            "storage": _storage_stats(mapper),
        }
    row, col = results["row"], results["columnar"]
    results["columnar"]["cold_speedup_vs_row"] = row["cold_s"] / col["cold_s"]
    results["columnar"]["warm_speedup_vs_row"] = row["warm_s"] / col["warm_s"]
    return results


def _point_vectors(cube, count: int) -> List[List]:
    stations = cube.members("station")
    days = cube.members("day")
    vectors = []
    for index in range(count):
        vector = [ALL] * cube.schema.n_dimensions
        vector[cube.schema.dimension_index("station")] = stations[index % len(stations)]
        if index % 2:
            vector[cube.schema.dimension_index("day")] = days[index % len(days)]
        vectors.append(vector)
    return vectors


def bench_format_identity(bundle, vectors) -> Dict[str, Dict]:
    """Every schema, both formats: ``stored_point_query`` answers must be
    identical across formats and equal to the in-memory cube."""
    expected = [bundle.cube.value(v) for v in vectors]
    per_schema: Dict[str, Dict] = {}
    for name in SCHEMAS:
        answers = {}
        for block_format in FORMATS:
            with _format_env(block_format):
                mapper = make_mapper(name)
            schema_id = mapper.store(bundle.cube, probe_size=False)
            _flush_all(mapper)
            answers[block_format] = [
                stored_point_query(mapper, schema_id, v) for v in vectors
            ]
        per_schema[name] = {
            "formats_agree": answers["row"] == answers["columnar"],
            "matches_cube": answers["columnar"] == expected,
        }
    return per_schema


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="Month", help="dataset name (default Month)")
    parser.add_argument("--selects", type=int, default=N_SELECTS, help="filtered selects per pass")
    parser.add_argument("--repeats", type=int, default=3, help="best-of warm repeats")
    parser.add_argument("--out", default="BENCH_columnar_blocks.json", help="JSON output path")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: fewer selects, single warm repeat (still Month "
             "scale — the zone-skip assertion needs real block counts)",
    )
    args = parser.parse_args(argv)

    n_selects = 4 if args.quick else args.selects
    repeats = 1 if args.quick else args.repeats
    n_points = 8 if args.quick else N_POINT_QUERIES

    bundle = load_dataset(args.dataset)
    specs = _select_specs(bundle.cube, n_selects)
    expected = [list(select(bundle.cube, **spec)) for spec in specs]

    ablation = bench_filtered_selects(bundle, specs, expected, repeats)
    identity = bench_format_identity(bundle, _point_vectors(bundle.cube, n_points))

    identical = all(
        ablation[block_format]["answers_identical"] for block_format in FORMATS
    ) and all(
        cell["formats_agree"] and cell["matches_cube"] for cell in identity.values()
    )
    skips = ablation["columnar"]["cold_pass_blocks_skipped"]
    report = {
        "bench": "columnar_blocks",
        "dataset": args.dataset,
        "n_tuples": bundle.n_tuples,
        "n_selects": n_selects,
        "repeats": repeats,
        "repro_scale": current_scale(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "answers_identical": identical,
        "filtered_select": ablation,
        "point_query_identity": identity,
        "telemetry": telemetry_snapshot(),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"dataset={args.dataset} selects={n_selects} repeats={repeats} "
          f"answers_identical={identical}")
    for block_format in FORMATS:
        cell = ablation[block_format]
        print(f"{block_format:9s} cold {cell['cold_s'] * 1000:8.1f} ms   "
              f"warm {cell['warm_s'] * 1000:8.1f} ms   "
              f"walk {cell['walk_s'] * 1000:8.1f} ms   "
              f"skips {cell['cold_pass_blocks_skipped']}")
    print(f"columnar vs row: cold {ablation['columnar']['cold_speedup_vs_row']:.2f}x   "
          f"warm {ablation['columnar']['warm_speedup_vs_row']:.2f}x   "
          f"dict ratio {ablation['columnar']['storage']['dict_hit_ratio']:.2f}")
    for name, cell in identity.items():
        print(f"{name:12s} formats_agree={cell['formats_agree']} "
              f"matches_cube={cell['matches_cube']}")
    print(f"wrote {args.out}")

    if not identical:
        print("FAIL: answers diverged across formats", file=sys.stderr)
        return 1
    if skips <= 0:
        print("FAIL: cold columnar pass skipped no blocks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
