"""Streaming-ingest benchmark: sustained micro-batch appends vs. query latency.

The incremental maintenance loop trades a little query-time work (the
pre-merge overlay folds one answer per physical cube) for never blocking
ingest on a full rebuild.  This bench drives the whole loop the way
``repro ingest`` does — ``FeedTailer`` micro-batches through
``CubeMaintainer.append`` with a background merge every
``merge_every`` deltas — and measures both sides of the trade:

* **Ingest** — sustained facts/second over the full feed, split into
  append time (delta build + delta store) and merge time (memo-seeded
  fold + epoch flip).  Structural identity of the final merged cube with
  a cold rebuild is asserted on every run.

* **Query** — warm stored point-query latency sampled *during* ingest:
  on the overlay right before each merge (worst case: base +
  ``merge_every`` deltas) and on the merged base right after the flip
  (steady state).  A static baseline — the same vectors against a plain
  cold-stored cube, i.e. the PR 3 cached-read path — anchors the budget:
  the steady-state warm latency must stay within ``BUDGET_FACTOR``× the
  baseline while merges run in the background.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_streaming_ingest.py
    PYTHONPATH=src python benchmarks/bench_streaming_ingest.py --quick

Emits machine-readable JSON (``--out``, default ``BENCH_streaming.json``)
so later PRs can track the trajectory; CI asserts the signature identity
and the query budget from it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Dict, List

from repro.analysis.dwarf_check import structural_signature
from repro.bench.datasets import current_scale, load_dataset
from repro.dwarf.builder import build_cube
from repro.dwarf.cell import ALL
from repro.etl.stream import FeedTailer, resolve_ingest_batch
from repro.mapping.incremental import CubeMaintainer, resolve_merge_deltas
from repro.mapping.registry import make_mapper
from repro.mapping.stored_query import stored_point_query
from repro.smartcity.bikes import bikes_pipeline
from repro.telemetry import enable_metrics, enable_tracing

try:
    from benchmarks._timing import best_of, gc_paused, telemetry_snapshot, timed
except ImportError:  # standalone `python benchmarks/bench_*.py`: script dir on path
    from _timing import best_of, gc_paused, telemetry_snapshot, timed

N_QUERIES = 30

# Steady-state warm queries read one merged cube through one epoch
# lookup; the epoch indirection plus freshly rebuilt plan/row caches
# after each flip must not cost more than this multiple of the static
# cached-read path.
BUDGET_FACTOR = 2.0


def _query_vectors(cube, count: int) -> List[List]:
    """A deterministic mix of full-point and partial-ALL queries."""
    stations = cube.members("station")
    days = cube.members("day")
    vectors = []
    for index in range(count):
        vector = [ALL] * cube.schema.n_dimensions
        vector[cube.schema.dimension_index("station")] = stations[index % len(stations)]
        if index % 2:
            vector[cube.schema.dimension_index("day")] = days[index % len(days)]
        vectors.append(vector)
    return vectors


def _query_pass(mapper, schema_id, vectors):
    """One warm-up pass, then one timed pass; returns seconds."""
    run = lambda: [stored_point_query(mapper, schema_id, v) for v in vectors]
    run()
    with gc_paused():
        _, elapsed = timed(run, label="bench.streaming.query_pass")
    return elapsed


def bench_static_baseline(bundle, schema_name: str, vectors, repeats: int) -> Dict:
    """Warm point-query latency on a plain cold-stored cube.

    This is the cached-read path the stored-query bench certifies; the
    streaming loop's steady-state latency is judged against it.
    """
    mapper = make_mapper(schema_name)
    schema_id = mapper.store(bundle.cube, probe_size=False)
    if hasattr(mapper, "keyspace_name"):
        for table in mapper.engine.keyspace(mapper.keyspace_name).tables:
            table.flush()
    run = lambda: [stored_point_query(mapper, schema_id, v) for v in vectors]
    answers = run()  # cold pass doubles as the warm-up
    assert answers == [bundle.cube.value(v) for v in vectors]
    warm_s = best_of(run, repeats, label="bench.streaming.baseline_pass")
    return {"warm_s": warm_s, "warm_ms_per_query": warm_s * 1000 / len(vectors)}


def bench_streaming(bundle, schema_name: str, batch_size: int,
                    merge_every: int, vectors) -> Dict:
    """The maintenance loop end to end, instrumented per phase."""
    pipeline = bikes_pipeline()
    mapper = make_mapper(schema_name)
    tailer = FeedTailer(bundle.documents, batch_size=batch_size)

    first = tailer.poll()
    assert first is not None, "dataset produced no documents"
    with gc_paused():
        maintainer, open_s = timed(
            lambda: CubeMaintainer.open(
                mapper, build_cube(pipeline.extract(first.documents))
            ),
            label="bench.streaming.open",
        )

    append_s = merge_s = 0.0
    appends = merges = 0
    overlay_pass_s: List[float] = []
    merged_pass_s: List[float] = []
    while True:
        batch = tailer.poll()
        if batch is None:
            break
        rows = pipeline.extract(batch.documents)
        with gc_paused():
            _, elapsed = timed(
                lambda: maintainer.append(rows), label="bench.streaming.append"
            )
        append_s += elapsed
        appends += 1
        if maintainer.pending_deltas >= merge_every:
            # Worst-case read, sampled while the merge thread is folding:
            # base + merge_every deltas per answer until the flip publishes.
            with gc_paused():
                _, elapsed = timed(
                    lambda: (
                        maintainer.merge_async(),
                        overlay_pass_s.append(
                            _query_pass(mapper, maintainer.logical_id, vectors)
                        ),
                        maintainer.wait(),
                    ),
                    label="bench.streaming.merge",
                )
            merge_s += elapsed
            merges += 1
            # Steady state: one merged cube, caches rebuilt post-flip.
            merged_pass_s.append(
                _query_pass(mapper, maintainer.logical_id, vectors)
            )
    if maintainer.pending_deltas:
        with gc_paused():
            _, elapsed = timed(maintainer.merge, label="bench.streaming.merge")
        merge_s += elapsed
        merges += 1
    with gc_paused():
        reclaimed, compact_s = timed(
            maintainer.compact, label="bench.streaming.compact"
        )

    view = maintainer.view()
    answers = [stored_point_query(mapper, maintainer.logical_id, v) for v in vectors]
    assert answers == [bundle.cube.value(v) for v in vectors], (
        "maintained cube diverged from the reference answers"
    )
    identical = structural_signature(mapper.load(view.base_id)) == (
        structural_signature(bundle.cube)
    )
    assert identical, "merged cube diverged from a cold rebuild"

    ingest_s = open_s + append_s + merge_s
    n_queries = len(vectors)
    return {
        "n_facts": bundle.n_tuples,
        "micro_batches": appends + 1,
        "batch_size": batch_size,
        "merge_every": merge_every,
        "merges": merges,
        "final_epoch": view.epoch,
        "tombstoned_rows_compacted": reclaimed,
        "open_s": open_s,
        "append_s": append_s,
        "merge_s": merge_s,
        "compact_s": compact_s,
        "ingest_s": ingest_s,
        "facts_per_second": bundle.n_tuples / ingest_s if ingest_s else float("inf"),
        "overlay_warm_ms_per_query": (
            min(overlay_pass_s) * 1000 / n_queries if overlay_pass_s else None
        ),
        "merged_warm_ms_per_query": (
            min(merged_pass_s) * 1000 / n_queries if merged_pass_s else None
        ),
        "signature_identical_to_rebuild": identical,
    }


def _count_ingest_spans(spans) -> int:
    total = 0
    for node in spans:
        if node.get("name", "").startswith("ingest."):
            total += node.get("count", 0)
        total += _count_ingest_spans(node.get("children", ()))
    return total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="Month", help="dataset name (default Month)")
    parser.add_argument("--schema", default="NoSQL-DWARF", help="mapper schema")
    parser.add_argument(
        "--batch", type=int, default=None,
        help="micro-batch size in documents (default: 4, quick: 1 — small "
             "enough that the merge cadence fires mid-feed)",
    )
    parser.add_argument(
        "--merge-every", type=int, default=None,
        help="merge cadence in deltas (default: REPRO_MERGE_DELTAS or 4)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--out", default="BENCH_streaming.json", help="JSON output path")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: Day dataset, small batches, single repeat",
    )
    args = parser.parse_args(argv)

    dataset = "Day" if args.quick else args.dataset
    repeats = 1 if args.quick else args.repeats
    if args.batch is None:
        batch_size = 1 if args.quick else 4
    else:
        batch_size = resolve_ingest_batch(args.batch)
    merge_every = resolve_merge_deltas(args.merge_every)

    enable_metrics(True)
    enable_tracing(True)

    bundle = load_dataset(dataset)
    vectors = _query_vectors(bundle.cube, N_QUERIES)
    streaming = bench_streaming(bundle, args.schema, batch_size, merge_every, vectors)
    baseline = bench_static_baseline(bundle, args.schema, vectors, repeats)

    merged_ms = streaming["merged_warm_ms_per_query"]
    within_budget = None
    if merged_ms is not None:
        within_budget = merged_ms <= BUDGET_FACTOR * baseline["warm_ms_per_query"]

    telemetry = telemetry_snapshot()
    report = {
        "bench": "streaming_ingest",
        "dataset": dataset,
        "schema": args.schema,
        "repro_scale": current_scale(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "repeats": repeats,
        "streaming": streaming,
        "static_baseline": baseline,
        "budget_factor": BUDGET_FACTOR,
        "query_latency_within_budget": within_budget,
        "ingest_spans": _count_ingest_spans(telemetry["spans"]),
        "telemetry": telemetry,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"dataset={dataset} schema={args.schema} facts={streaming['n_facts']} "
          f"batches={streaming['micro_batches']} (size <= {batch_size}) "
          f"merges={streaming['merges']} (cadence {merge_every})")
    print(f"ingest  open {streaming['open_s'] * 1000:8.1f} ms   "
          f"append {streaming['append_s'] * 1000:8.1f} ms   "
          f"merge {streaming['merge_s'] * 1000:8.1f} ms   "
          f"compact {streaming['compact_s'] * 1000:8.1f} ms")
    print(f"        sustained {streaming['facts_per_second']:,.0f} facts/s, "
          f"final epoch {streaming['final_epoch']}, "
          f"{streaming['tombstoned_rows_compacted']} tombstoned row(s) compacted")
    if merged_ms is not None:
        print(f"query   overlay {streaming['overlay_warm_ms_per_query']:.3f} ms/q   "
              f"merged {merged_ms:.3f} ms/q   "
              f"static baseline {baseline['warm_ms_per_query']:.3f} ms/q")
        print(f"        merged/static {merged_ms / baseline['warm_ms_per_query']:.2f}x "
              f"(budget {BUDGET_FACTOR:.1f}x) -> "
              + ("WITHIN budget" if within_budget else "OVER budget"))
    print(f"signature {'IDENTICAL to' if streaming['signature_identical_to_rebuild'] else 'DIVERGES from'} cold rebuild; "
          f"ingest.* spans recorded: {report['ingest_spans']}")
    print(f"wrote {args.out}")
    ok = streaming["signature_identical_to_rebuild"] and (
        within_budget is not False
    ) and report["ingest_spans"] > 0
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
