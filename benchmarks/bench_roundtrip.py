"""Bi-directional mapping: reconstruction time and fidelity per schema.

The contribution is explicitly *bi-directional* (§1): a DWARF stored in
any schema must be rebuildable by joining the stored records on their
unique ids.  This bench times the reverse direction (``load``) for all
four schemas on the Week cube and asserts exact fidelity.
"""

import pytest

from repro.bench.datasets import load_dataset
from repro.mapping.registry import MAPPER_FACTORIES, make_mapper

from benchmarks.conftest import report_table

SCHEMAS = list(MAPPER_FACTORIES)


@pytest.mark.parametrize("schema_name", SCHEMAS)
def test_reload_week_cube(benchmark, schema_name):
    bundle = load_dataset("Week")
    mapper = make_mapper(schema_name)
    schema_id = mapper.store(bundle.cube, probe_size=False)

    rebuilt = benchmark.pedantic(lambda: mapper.load(schema_id), rounds=1, iterations=1)

    source = bundle.cube
    assert rebuilt.total() == source.total()
    assert rebuilt.stats.node_count == source.stats.node_count
    assert rebuilt.stats.cell_count == source.stats.cell_count
    assert sorted(rebuilt.leaves()) == sorted(source.leaves())

    rows = report_table("Bi-directional mapping: reload time (ms, Week)", SCHEMAS)
    rows.setdefault("load ms", [None] * len(SCHEMAS))
    rows["load ms"][SCHEMAS.index(schema_name)] = round(benchmark.stats["mean"] * 1000)


def test_incremental_merge_vs_rebuild(benchmark):
    """The §7 future-work path: merging a delta cube beats a full rebuild."""
    from repro.dwarf.builder import DwarfBuilder, merge_cubes
    from repro.smartcity.bikes import bikes_pipeline

    from benchmarks._timing import timed

    bundle = load_dataset("Month")
    documents = list(bundle.documents)
    split = max(1, len(documents) * 9 // 10)
    pipeline = bikes_pipeline()
    standing_facts = pipeline.extract(documents[:split])
    delta_facts = pipeline.extract(documents[split:])
    builder = DwarfBuilder(standing_facts.schema)
    standing = builder.build(standing_facts)

    def contest():
        merged, merge_seconds = timed(
            lambda: merge_cubes(standing, builder.build(delta_facts)),
            label="bench.merge",
        )
        rebuilt, rebuild_seconds = timed(
            lambda: builder.build(pipeline.extract(documents)),
            label="bench.rebuild",
        )
        return merged, rebuilt, merge_seconds, rebuild_seconds

    merged, rebuilt, merge_seconds, rebuild_seconds = benchmark.pedantic(
        contest, rounds=1, iterations=1
    )
    assert merged.total() == rebuilt.total()

    rows = report_table(
        "Incremental update: 10% delta merge vs full rebuild (Month)",
        ["merge ms", "rebuild ms"],
    )
    rows["measured"] = [round(merge_seconds * 1000), round(rebuild_seconds * 1000)]
