"""Ablation — SSTable block compression on/off.

Block compression is the mechanism that keeps the NoSQL schemas
competitive with MySQL-Min on size (Table 4); switching it off shows the
raw cost of the Cassandra 2.x (name, timestamp, value) cell format.
"""

import pytest

from repro.bench.datasets import load_dataset
from repro.mapping.nosql_dwarf import NoSQLDwarfMapper
from repro.nosqldb.engine import NoSQLEngine

from benchmarks.conftest import report_table

MODES = ["compressed", "uncompressed"]
SIZES = {}


@pytest.mark.parametrize("mode", MODES)
def test_compression_ablation(benchmark, mode):
    bundle = load_dataset("Week")
    mapper = NoSQLDwarfMapper(NoSQLEngine(), compression=(mode == "compressed"))
    mapper.install()

    schema_id = benchmark.pedantic(
        lambda: mapper.store(bundle.cube, probe_size=False), rounds=1, iterations=1
    )
    size_mb = mapper.size_bytes() / (1024 * 1024)
    SIZES[mode] = size_mb
    assert mapper.load(schema_id).total() == bundle.cube.total()

    rows = report_table(
        "Ablation: SSTable compression (NoSQL-DWARF @ Week)", MODES
    )
    rows.setdefault("size MB", [None, None])
    rows.setdefault("insert ms", [None, None])
    column = MODES.index(mode)
    rows["size MB"][column] = round(size_mb, 2)
    rows["insert ms"][column] = round(benchmark.stats["mean"] * 1000)


def test_compression_ratio(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(SIZES) == set(MODES), "run both modes first"
    ratio = SIZES["compressed"] / SIZES["uncompressed"]
    # zlib-1/1KB chunks approximate LZ4: expect roughly 3:1 on feed data.
    assert 0.15 <= ratio <= 0.6, SIZES
