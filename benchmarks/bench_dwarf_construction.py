"""DWARF construction scaling: build time vs tuples and dimensions.

Not a table in the paper, but the substrate behind all of them: cube
construction must scale near-linearly in tuples for the pipeline to keep
up with a stream.
"""

import pytest

from repro.bench.datasets import load_dataset
from repro.core.schema import CubeSchema
from repro.core.tuples import TupleSet
from repro.dwarf.builder import DwarfBuilder

from benchmarks.conftest import report_table

DATASET_SUBSET = ["Day", "Week", "Month", "TMonth"]


@pytest.mark.parametrize("dataset", DATASET_SUBSET)
def test_build_scaling_in_tuples(benchmark, dataset):
    bundle = load_dataset(dataset)
    from repro.smartcity.bikes import bikes_pipeline

    facts = bikes_pipeline().extract(bundle.documents).sorted()
    builder = DwarfBuilder(facts.schema)

    cube = benchmark.pedantic(lambda: builder.build(facts), rounds=1, iterations=1)
    assert cube.n_source_tuples == bundle.n_tuples

    rows = report_table(
        "DWARF construction: build time (ms) by dataset", DATASET_SUBSET
    )
    rows.setdefault("build (measured)", [None] * len(DATASET_SUBSET))
    rows["build (measured)"][DATASET_SUBSET.index(dataset)] = round(
        benchmark.stats["mean"] * 1000
    )


@pytest.mark.parametrize("n_dims", [4, 6, 8])
def test_build_scaling_in_dimensions(benchmark, n_dims):
    """Higher dimensionality multiplies the group-by views to coalesce."""
    bundle = load_dataset("Week")
    from repro.smartcity.bikes import bikes_pipeline

    full = bikes_pipeline().extract(bundle.documents)
    schema = CubeSchema("proj", full.schema.dimension_names[:n_dims])
    projected = TupleSet(schema)
    for fact in full:
        projected.append(fact.keys[:n_dims] + (fact.measure,))
    builder = DwarfBuilder(schema)

    cube = benchmark.pedantic(lambda: builder.build(projected), rounds=1, iterations=1)
    assert cube.total() == sum(f.measure for f in full)

    rows = report_table(
        "DWARF construction: build time (ms) by dimensionality (Week)",
        ["4", "6", "8"],
    )
    rows.setdefault("build (measured)", [None, None, None])
    rows["build (measured)"][[4, 6, 8].index(n_dims)] = round(
        benchmark.stats["mean"] * 1000
    )
